// End-to-end chaos plane: these tests compose the real distributed stack —
// transport store, StoreStepper pipeline, alert engine, webhook sink, and
// the HTTP query plane — and drive it through the chaos scenarios cmd/loadgen
// replays (utilization burst, flapping node, correlated rack outage),
// asserting the full fire → webhook → resolve lifecycle and, under churn,
// the absence of any false fire from warming or tombstoned forecast rows.
package alert_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"orcf/internal/alert"
	"orcf/internal/core"
	"orcf/internal/serve"
	"orcf/internal/transport"
)

// chaosRig is one in-process deployment: store-fed pipeline, alert engine
// with webhook + collector sinks, and the serving plane.
type chaosRig struct {
	store   *transport.Store
	stepper *serve.StoreStepper
	engine  *alert.Engine
	collect *alert.CollectorSink
	hook    *alert.WebhookSink
	api     *httptest.Server

	mu       sync.Mutex
	received []alert.Event // webhook deliveries, in arrival order
	step     int
}

func newChaosRig(t *testing.T, nodes int, cfg core.Config, rules *alert.RuleSet) *chaosRig {
	t.Helper()
	rig := &chaosRig{store: transport.NewStore()}

	webhook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev alert.Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("webhook payload: %v", err)
			return
		}
		rig.mu.Lock()
		rig.received = append(rig.received, ev)
		rig.mu.Unlock()
	}))
	t.Cleanup(webhook.Close)

	var err error
	if rig.hook, err = alert.NewWebhookSink(webhook.URL, alert.WebhookOptions{RetryDelay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rig.hook.Close() })
	rig.collect = &alert.CollectorSink{}
	if rig.engine, err = alert.New(alert.Config{
		Rules: rules, Sinks: []alert.Sink{rig.collect, rig.hook}, MaxHorizon: cfg.SnapshotHorizon,
	}); err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = nodes
	if rig.stepper, err = serve.NewStoreStepper(rig.store, cfg); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Source: rig.stepper.System(), Alerts: rig.engine})
	if err != nil {
		t.Fatal(err)
	}
	rig.api = httptest.NewServer(srv)
	t.Cleanup(rig.api.Close)
	return rig
}

// tick applies one measurement per reporting node (nil = this node is silent
// this step) and advances the pipeline one step, evaluating the rules
// exactly as cmd/forecastd's tick loop does.
func (rig *chaosRig) tick(t *testing.T, values map[int]float64) {
	t.Helper()
	rig.step++
	for id, v := range values {
		rig.store.Apply(transport.Measurement{Node: id, Step: rig.step, Values: []float64{v}})
	}
	if _, ok, err := rig.stepper.Tick(); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Fatalf("step %d: bootstrap gate still closed", rig.step)
	}
	if _, err := rig.engine.Evaluate(rig.stepper.System().Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func (rig *chaosRig) webhookCount() int {
	rig.mu.Lock()
	defer rig.mu.Unlock()
	return len(rig.received)
}

func getAPI(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func waitCond(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func flat(nodes int, v float64) map[int]float64 {
	m := make(map[int]float64, nodes)
	for id := 0; id < nodes; id++ {
		m[id] = v
	}
	return m
}

// TestChaosBurstFireWebhookResolve is the full lifecycle: a utilization
// burst fires the cluster rule, the webhook sink records every transition,
// the query plane reports the firing instances and a scale-up
// recommendation, and the alert resolves once the load subsides.
func TestChaosBurstFireWebhookResolve(t *testing.T) {
	t.Parallel()
	const nodes = 6
	rig := newChaosRig(t, nodes, core.Config{
		Resources: 1, K: 2, InitialCollection: 8, RetrainEvery: 200,
		MPrime: 3, Seed: 11, SnapshotHorizon: 6,
	}, &alert.RuleSet{StepsPerHour: 1, Rules: []alert.Rule{{
		Name: "util-high", Kind: alert.KindThreshold, Scope: alert.ScopeCluster,
		Cluster: -1, Above: true, Threshold: 0.8,
		FireStreak: 2, ClearStreak: 2, ClearMargin: 0.05, Horizon: 1,
	}}})

	// Calm phase past initial training: nothing fires.
	for i := 0; i < 12; i++ {
		rig.tick(t, flat(nodes, 0.3))
	}
	if st := rig.engine.Stats(); st.Fires != 0 {
		t.Fatalf("fired during calm phase: %+v", st)
	}

	// Burst: drive utilization to 0.9 until the rule fires.
	waitFire := 0
	for rig.engine.Stats().Fires == 0 && waitFire < 8 {
		rig.tick(t, flat(nodes, 0.9))
		waitFire++
	}
	fires := rig.engine.Stats().Fires
	if fires == 0 {
		t.Fatal("burst never fired util-high")
	}
	if waitFire < 2 {
		t.Fatalf("fired after %d burst steps despite fire_streak=2", waitFire)
	}

	// The query plane sees the firing instances...
	var ar serve.AlertsResponse
	if code := getAPI(t, rig.api.URL+"/v1/alerts", &ar); code != http.StatusOK {
		t.Fatalf("/v1/alerts status %d", code)
	}
	if len(ar.Firing) == 0 || ar.Firing[0].Rule != "util-high" {
		t.Fatalf("/v1/alerts firing %+v", ar.Firing)
	}
	if ar.Stats.Fires != fires {
		t.Fatalf("/v1/alerts stats %+v, engine says %d fires", ar.Stats, fires)
	}
	// ...and proposes scaling up the hot clusters.
	var rr serve.RecommendationsResponse
	if code := getAPI(t, rig.api.URL+"/v1/recommendations?h=2", &rr); code != http.StatusOK {
		t.Fatalf("/v1/recommendations status %d", code)
	}
	up := 0
	for _, rec := range rr.Recommendations {
		if rec.Action == alert.ActionScaleUp {
			if rec.Delta < 1 {
				t.Fatalf("scale-up with delta %d", rec.Delta)
			}
			up++
		}
	}
	if up == 0 {
		t.Fatalf("no scale-up recommendation during the burst: %+v", rr.Recommendations)
	}

	// Subside: everything resolves and the fleet goes quiet.
	for i := 0; i < 10 && rig.engine.Stats().Firing > 0; i++ {
		rig.tick(t, flat(nodes, 0.3))
	}
	st := rig.engine.Stats()
	if st.Firing != 0 || st.Resolves != fires {
		t.Fatalf("lifecycle incomplete: %+v (want %d resolves)", st, fires)
	}
	if code := getAPI(t, rig.api.URL+"/v1/alerts", &ar); code != http.StatusOK || len(ar.Firing) != 0 {
		t.Fatalf("/v1/alerts after subsidence: status %d, firing %+v", code, ar.Firing)
	}

	// Every transition reached the webhook, in the exact engine order. The
	// sink counts Delivered after the HTTP round-trip, so once it reaches
	// total the handler-side log is complete too.
	total := int(st.Fires + st.Resolves)
	waitCond(t, func() bool {
		return rig.hook.SinkStats().Delivered == int64(total) && rig.webhookCount() == total
	}, "webhook never received every transition")
	events := rig.collect.Events()
	rig.mu.Lock()
	defer rig.mu.Unlock()
	for i, ev := range rig.received {
		if ev != events[i] {
			t.Fatalf("webhook event %d = %+v, engine emitted %+v", i, ev, events[i])
		}
	}
	if hs := rig.hook.SinkStats(); hs.Delivered != int64(total) || hs.Dropped != 0 {
		t.Fatalf("webhook sink stats %+v, want %d delivered", hs, total)
	}
}

// TestChaosFlappingAndRackOutageNoFalseFires drives the two churn scenarios:
// a flapping node (repeatedly evicted by absence timeout and rejoining with
// an empty window) and a correlated rack outage (a contiguous block of
// nodes vanishing and returning together). Warming members' forecast rows
// are NaN; the engine must skip them without ever firing the hair-trigger
// node rule.
func TestChaosFlappingAndRackOutageNoFalseFires(t *testing.T) {
	t.Parallel()
	const nodes = 8
	// AbsenceTimeout exceeds the look-back window (MPrime+1 slots): a silent
	// member's window fully drains (forecast rows go NaN) while it is still
	// live, so the engine must evaluate — and skip — genuinely warming rows
	// before the eviction lands.
	rig := newChaosRig(t, nodes, core.Config{
		Resources: 1, K: 2, InitialCollection: 8, RetrainEvery: 200,
		MPrime: 3, Seed: 5, SnapshotHorizon: 6, AbsenceTimeout: 5,
	}, &alert.RuleSet{StepsPerHour: 1, Rules: []alert.Rule{{
		// fire_streak 1: a single breaching evaluation of a warming row
		// would fire immediately — the sharpest possible false-fire probe.
		Name: "node-hot", Kind: alert.KindThreshold, Scope: alert.ScopeNode,
		Above: true, Threshold: 0.6, FireStreak: 1, ClearStreak: 1, Horizon: 2,
	}}})

	for i := 0; i < 12; i++ {
		rig.tick(t, flat(nodes, 0.3))
	}
	evictionsAt := func() uint64 { return rig.stepper.System().Snapshot().Evictions() }

	// Provisioned-ahead capacity: node 8 is pre-registered before its agent
	// comes up. An absent member that HAS reported stays present with its
	// sample-held value, so the only warming (NaN) forecast rows the store
	// path can produce are a live member's before its first report — the
	// engine must skip them, never instantiate the rule against them.
	if err := rig.stepper.System().AddNodes(nodes); err != nil {
		t.Fatal(err)
	}
	preSkips := rig.engine.Stats().NaNSkips
	for i := 0; i < 3; i++ {
		rig.tick(t, flat(nodes, 0.3)) // node 8 still silent: NaN rows
	}
	if rig.engine.Stats().NaNSkips == preSkips {
		t.Fatal("warming pre-registered node produced no NaN skips")
	}
	fleet := nodes + 1
	for i := 0; i < 3; i++ { // its agent comes up and fills the window
		rig.tick(t, flat(fleet, 0.3))
	}

	// Flap: node 7 goes silent past the absence timeout (evicted), reports
	// again (rejoins, warming), and repeats. Values stay calm throughout.
	base := evictionsAt()
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 6; i++ { // silent long enough to drain the window and be evicted
			m := flat(fleet, 0.3)
			delete(m, 7)
			rig.tick(t, m)
		}
		for i := 0; i < 3; i++ { // back, warming behind the presence mask
			rig.tick(t, flat(fleet, 0.3))
		}
	}
	if evictionsAt() == base {
		t.Fatal("flap scenario never evicted the flapping node")
	}

	// Rack outage: nodes 4..7 vanish together, then return together.
	for i := 0; i < 6; i++ {
		m := flat(fleet, 0.3)
		for id := 4; id < 8; id++ {
			delete(m, id)
		}
		rig.tick(t, m)
	}
	for i := 0; i < 6; i++ {
		rig.tick(t, flat(fleet, 0.3))
	}

	st := rig.engine.Stats()
	if st.Fires != 0 {
		t.Fatalf("false fire under churn: %+v, collector %+v", st, rig.collect.Events())
	}
	if st.NaNSkips == 0 {
		t.Fatal("churn produced no warming NaN rows — the scenario did not exercise the mask")
	}
	if rig.webhookCount() != 0 {
		rig.mu.Lock()
		defer rig.mu.Unlock()
		t.Fatalf("webhook received events under churn: %+v", rig.received)
	}
}
