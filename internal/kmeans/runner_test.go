package kmeans

import (
	"math"
	"math/rand/v2"
	"testing"
)

// genPoints builds a randomized workload. mode selects degenerate shapes:
// 0 = generic gaussian-ish clusters, 1 = all points identical (seeding must
// fall back to uniform picks), 2 = heavy duplication (empty-cluster repair
// likely), 3 = one-dimensional scalars (the paper's default configuration).
func genPoints(rng *rand.Rand, n, d, mode int) [][]float64 {
	pts := make([][]float64, n)
	switch mode {
	case 1:
		base := make([]float64, d)
		for t := range base {
			base[t] = rng.Float64()
		}
		for i := range pts {
			pts[i] = cloneVec(base)
		}
	case 2:
		distinct := 1 + rng.IntN(3)
		bases := make([][]float64, distinct)
		for b := range bases {
			bases[b] = make([]float64, d)
			for t := range bases[b] {
				bases[b][t] = rng.Float64() * 10
			}
		}
		for i := range pts {
			pts[i] = cloneVec(bases[rng.IntN(distinct)])
		}
	default:
		for i := range pts {
			p := make([]float64, d)
			for t := range p {
				p[t] = rng.NormFloat64()*2 + float64(rng.IntN(4))*10
			}
			pts[i] = p
		}
	}
	return pts
}

func sameResult(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if len(got.Assignments) != len(want.Assignments) {
		t.Fatalf("%s: %d assignments, want %d", tag, len(got.Assignments), len(want.Assignments))
	}
	for i := range want.Assignments {
		if got.Assignments[i] != want.Assignments[i] {
			t.Fatalf("%s: assign[%d] = %d, want %d", tag, i, got.Assignments[i], want.Assignments[i])
		}
	}
	if len(got.Centroids) != len(want.Centroids) {
		t.Fatalf("%s: %d centroids, want %d", tag, len(got.Centroids), len(want.Centroids))
	}
	for j := range want.Centroids {
		for tt := range want.Centroids[j] {
			g, w := got.Centroids[j][tt], want.Centroids[j][tt]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s: centroid[%d][%d] = %v, want %v (bitwise)", tag, j, tt, g, w)
			}
		}
	}
	if math.Float64bits(got.Inertia) != math.Float64bits(want.Inertia) {
		t.Fatalf("%s: inertia %v, want %v (bitwise)", tag, got.Inertia, want.Inertia)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: iterations %d, want %d", tag, got.Iterations, want.Iterations)
	}
}

// TestRunnerMatchesReferenceExactly is the differential pin for the SoA
// rewrite: across randomized and degenerate workloads, Run (flat Runner
// underneath) must reproduce the preserved slice-of-rows implementation
// bit for bit — including the RNG draw sequence, checked by comparing
// post-run draws from the two generators.
func TestRunnerMatchesReferenceExactly(t *testing.T) {
	shapes := rand.New(rand.NewPCG(8, 80))
	for trial := 0; trial < 400; trial++ {
		n := 1 + shapes.IntN(40)
		if trial%8 == 0 {
			// Cross the blocked assignment loop's 64-point boundary: partial
			// final blocks, exact multiples, and multi-block runs.
			n = assignBlock - 1 + shapes.IntN(3*assignBlock)
		}
		d := 1 + shapes.IntN(4)
		k := 1 + shapes.IntN(10)
		mode := shapes.IntN(4)
		if mode == 3 {
			d = 1
		}
		cfg := Config{K: k, MaxIterations: shapes.IntN(8), Tolerance: float64(shapes.IntN(2)) * 1e-9}
		seed := shapes.Uint64()
		pts := genPoints(rand.New(rand.NewPCG(seed, 1)), n, d, mode)

		rngRef := rand.New(rand.NewPCG(seed, 2))
		rngNew := rand.New(rand.NewPCG(seed, 2))
		want, errRef := refRun(pts, cfg, rngRef)
		got, errNew := Run(pts, cfg, rngNew)
		if (errRef == nil) != (errNew == nil) {
			t.Fatalf("trial %d: err mismatch ref=%v new=%v", trial, errRef, errNew)
		}
		if errRef != nil {
			continue
		}
		sameResult(t, "trial", got, want)
		// Identical post-run draws prove both paths consumed the same
		// number of RNG values in the same order.
		for draw := 0; draw < 3; draw++ {
			if a, b := rngRef.Uint64(), rngNew.Uint64(); a != b {
				t.Fatalf("trial %d: RNG stream diverged at post-run draw %d", trial, draw)
			}
		}
	}
}

// TestRunnerScratchReuse pins that one Runner reused across runs of varying
// shapes keeps producing reference-identical results (stale scratch from a
// larger earlier run must not leak into a smaller later one).
func TestRunnerScratchReuse(t *testing.T) {
	r := NewRunner()
	shapes := rand.New(rand.NewPCG(9, 90))
	for trial := 0; trial < 120; trial++ {
		n := 2 + shapes.IntN(30)
		d := 1 + shapes.IntN(3)
		k := 1 + shapes.IntN(6)
		seed := shapes.Uint64()
		pts := genPoints(rand.New(rand.NewPCG(seed, 1)), n, d, shapes.IntN(3))
		flat := make([]float64, 0, n*d)
		for _, p := range pts {
			flat = append(flat, p...)
		}
		assign := make([]int, n)
		rngRef := rand.New(rand.NewPCG(seed, 3))
		rngNew := rand.New(rand.NewPCG(seed, 3))
		want, err := refRun(pts, Config{K: k}, rngRef)
		if err != nil {
			t.Fatalf("trial %d: ref err %v", trial, err)
		}
		if err := r.RunFlat(flat, n, d, Config{K: k}, rngNew, assign); err != nil {
			t.Fatalf("trial %d: RunFlat err %v", trial, err)
		}
		got := &Result{
			Assignments: assign,
			Centroids:   make([][]float64, r.NumCentroids()),
			Inertia:     r.Inertia(),
			Iterations:  r.Iterations(),
		}
		for j := range got.Centroids {
			got.Centroids[j] = r.Centroid(j)
		}
		sameResult(t, "reuse trial", got, want)
	}
}

func TestRunFlatRejectsBadInput(t *testing.T) {
	r := NewRunner()
	rng := rand.New(rand.NewPCG(1, 1))
	cases := []struct {
		name      string
		pts       []float64
		n, d, k   int
		assignLen int
	}{
		{"zero n", nil, 0, 1, 1, 0},
		{"zero d", []float64{1}, 1, 0, 1, 1},
		{"zero k", []float64{1}, 1, 1, 0, 1},
		{"short pts", []float64{1, 2, 3}, 2, 2, 1, 2},
		{"short assign", []float64{1, 2, 3, 4}, 2, 2, 1, 1},
	}
	for _, tc := range cases {
		err := r.RunFlat(tc.pts, tc.n, tc.d, Config{K: tc.k}, rng, make([]int, tc.assignLen))
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

// TestAssignFlatMatchesNearestFlat pins the blocked d > 1 assignment loop
// against the naive per-point scan at sizes straddling the block boundary:
// the reordered loop nest must pick bit-identical winners, including exact
// sqDist ties (mode-2 duplicated points), for every block-remainder shape.
func TestAssignFlatMatchesNearestFlat(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 120))
	for _, n := range []int{1, assignBlock - 1, assignBlock, assignBlock + 1, 3 * assignBlock, 200} {
		for _, d := range []int{2, 3, 4} {
			for mode := 0; mode < 3; mode++ {
				k := 1 + rng.IntN(7)
				pts := genPoints(rng, n, d, mode)
				cents := genPoints(rng, k, d, 0)
				flatP := make([]float64, 0, n*d)
				for _, p := range pts {
					flatP = append(flatP, p...)
				}
				flatC := make([]float64, 0, k*d)
				for _, c := range cents {
					flatC = append(flatC, c...)
				}
				assign := make([]int, n)
				AssignFlat(flatP, n, d, flatC, k, assign)
				for i := 0; i < n; i++ {
					want := nearestFlat(flatP[i*d:(i+1)*d], flatC, k)
					if assign[i] != want {
						t.Fatalf("n=%d d=%d mode=%d: assign[%d] = %d, want %d",
							n, d, mode, i, assign[i], want)
					}
				}
			}
		}
	}
}

func TestAssignFlatMatchesNearest(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 44))
	for trial := 0; trial < 50; trial++ {
		n, d, k := 1+rng.IntN(20), 1+rng.IntN(3), 1+rng.IntN(5)
		pts := genPoints(rng, n, d, trial%3)
		cents := genPoints(rng, k, d, 0)
		flatP := make([]float64, 0, n*d)
		for _, p := range pts {
			flatP = append(flatP, p...)
		}
		flatC := make([]float64, 0, k*d)
		for _, c := range cents {
			flatC = append(flatC, c...)
		}
		assign := make([]int, n)
		AssignFlat(flatP, n, d, flatC, k, assign)
		for i, p := range pts {
			if want := Nearest(p, cents); assign[i] != want {
				t.Fatalf("trial %d: assign[%d] = %d, want %d", trial, i, assign[i], want)
			}
			if got := NearestFlat(p, flatC, k); got != assign[i] {
				t.Fatalf("trial %d: NearestFlat disagrees: %d vs %d", trial, got, assign[i])
			}
		}
	}
}
