// Command collectd is the standalone central collector: it listens for node
// agents over TCP, maintains the latest measurement per node, and
// periodically prints the dynamic clustering summary (K centroids per
// resource) built from whatever has been received so far, plus the realized
// per-node transmission frequency the store has accounted (eq. 5) — the
// central-side check that the agents' adaptive policies hold their budgets.
// For the full pipeline with forecasting and an HTTP query API, use
// cmd/forecastd instead.
//
// Usage:
//
//	collectd -listen 127.0.0.1:7777 -k 3 -resources 2 -interval 2s
//
// Pair it with cmd/nodeagent instances feeding a trace through the adaptive
// transmission policy.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"orcf/internal/cluster"
	"orcf/internal/transport"
)

func main() {
	os.Exit(run())
}

// printFrequencies reports the realized per-node transmission frequency the
// store has accounted (eq. 5: accepted updates over the node's local step
// count), so the summary shows what the agents' budgets actually delivered
// alongside the clustering. Per-node values are listed for small fleets and
// summarized as mean/min/max for large ones.
func printFrequencies(nodes []int, stats map[int]transport.NodeStat) {
	mean, minF, maxF := 0.0, math.Inf(1), math.Inf(-1)
	for _, id := range nodes {
		f := stats[id].Frequency
		mean += f
		minF = math.Min(minF, f)
		maxF = math.Max(maxF, f)
	}
	mean /= float64(len(nodes))
	fmt.Printf("transmit | mean %.3f | min %.3f | max %.3f", mean, minF, maxF)
	if len(nodes) <= 16 {
		fmt.Print(" | per node:")
		for _, id := range nodes {
			fmt.Printf(" %d:%.2f", id, stats[id].Frequency)
		}
	}
	fmt.Println()
}

func run() int {
	var (
		listen    = flag.String("listen", "127.0.0.1:7777", "address to listen on")
		k         = flag.Int("k", 3, "number of clusters")
		resources = flag.Int("resources", 2, "measurement dimensionality")
		interval  = flag.Duration("interval", 2*time.Second, "clustering/reporting period")
		seed      = flag.Uint64("seed", 1, "clustering seed")
	)
	flag.Parse()

	store := transport.NewStore()
	srv, err := transport.NewServer(store, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		return 1
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		return 1
	}
	defer srv.Close()
	fmt.Printf("collectd listening on %s (K=%d)\n", addr, *k)

	// The dynamic tracker requires a fixed node population; when agents join
	// or leave, the trackers are rebuilt (cluster identities restart).
	var trackers []*cluster.Tracker
	trackedNodes := -1
	rebuild := func() error {
		trackers = make([]*cluster.Tracker, *resources)
		for r := range trackers {
			tr, err := cluster.NewTracker(cluster.Config{K: *k},
				rand.New(rand.NewPCG(*seed, uint64(r))))
			if err != nil {
				return err
			}
			trackers[r] = tr
		}
		return nil
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	for {
		select {
		case <-stop:
			fmt.Println("collectd: shutting down")
			return 0
		case <-ticker.C:
			stats := store.Stats()
			if len(stats) < *k {
				fmt.Printf("collectd: %d/%d nodes reporting; waiting\n", len(stats), *k)
				continue
			}
			nodes := make([]int, 0, len(stats))
			for id := range stats {
				nodes = append(nodes, id)
			}
			sort.Ints(nodes)
			if len(nodes) != trackedNodes {
				if err := rebuild(); err != nil {
					fmt.Fprintln(os.Stderr, "collectd:", err)
					return 1
				}
				trackedNodes = len(nodes)
				fmt.Printf("collectd: tracking %d nodes (clusters reset)\n", trackedNodes)
			}
			for r := 0; r < *resources; r++ {
				points := make([][]float64, len(nodes))
				usable := true
				for i, id := range nodes {
					vals := stats[id].Latest.Values
					if r >= len(vals) {
						usable = false
						break
					}
					points[i] = []float64{vals[r]}
				}
				if !usable {
					continue
				}
				step, err := trackers[r].Update(points)
				if err != nil {
					fmt.Fprintf(os.Stderr, "collectd: clustering resource %d: %v\n", r, err)
					continue
				}
				fmt.Printf("resource %d | %d nodes | centroids:", r, len(nodes))
				for _, c := range step.Centroids {
					fmt.Printf(" %.3f", c[0])
				}
				fmt.Println()
			}
			printFrequencies(nodes, stats)
		}
	}
}
