package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheSingleFlightCoalesces(t *testing.T) {
	t.Parallel()
	c := newFlightCache()
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func() ([][][]float64, error) {
		computes.Add(1)
		<-release
		return [][][]float64{{{0.5}}}, nil
	}

	const readers = 32
	var wg sync.WaitGroup
	results := make([][][][]float64, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.get(1, 4, compute)
			if err != nil {
				t.Errorf("reader %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computations for one (gen, h) key, want 1", got)
	}
	for i, v := range results {
		if &v[0][0][0] != &results[0][0][0][0] {
			t.Fatalf("reader %d got a different result instance", i)
		}
	}
	st := c.stats()
	if st.Misses != 1 || st.Hits != readers-1 {
		t.Fatalf("stats hits=%d misses=%d, want %d/1", st.Hits, st.Misses, readers-1)
	}
	if st.HitRatio <= 0.9 {
		t.Fatalf("hit ratio %v too low", st.HitRatio)
	}
}

func TestCacheDistinctHorizonsComputeSeparately(t *testing.T) {
	t.Parallel()
	c := newFlightCache()
	var computes atomic.Int64
	compute := func() ([][][]float64, error) {
		computes.Add(1)
		return nil, nil
	}
	for _, h := range []int{1, 2, 3, 1, 2, 3} {
		if _, err := c.get(7, h, compute); err != nil {
			t.Fatal(err)
		}
	}
	if got := computes.Load(); got != 3 {
		t.Fatalf("%d computations, want 3 (one per horizon)", got)
	}
}

func TestCacheNewGenerationInvalidates(t *testing.T) {
	t.Parallel()
	c := newFlightCache()
	var computes atomic.Int64
	compute := func() ([][][]float64, error) {
		computes.Add(1)
		return nil, nil
	}
	for i := 0; i < 3; i++ {
		if _, err := c.get(1, 5, compute); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.get(2, 5, compute); err != nil {
		t.Fatal(err)
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("%d computations, want 2 (generation bump recomputes)", got)
	}
}

func TestCacheGenerationRestartKeepsCaching(t *testing.T) {
	t.Parallel()
	c := newFlightCache()
	var computes atomic.Int64
	compute := func() ([][][]float64, error) {
		computes.Add(1)
		return nil, nil
	}
	if _, err := c.get(500, 2, compute); err != nil {
		t.Fatal(err)
	}
	// The Source was replaced (e.g. failover to a rebuilt System): its
	// generations restart at 1. The cache must keep working, not fall into
	// a permanent compute-always path.
	for i := 0; i < 4; i++ {
		if _, err := c.get(1, 2, compute); err != nil {
			t.Fatal(err)
		}
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("%d computations, want 2 (restarted generation must cache again)", got)
	}
	if hits := c.hits.Load(); hits != 3 {
		t.Fatalf("%d hits after restart, want 3", hits)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	t.Parallel()
	c := newFlightCache()
	boom := errors.New("boom")
	calls := 0
	compute := func() ([][][]float64, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return [][][]float64{}, nil
	}
	if _, err := c.get(1, 1, compute); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if _, err := c.get(1, 1, compute); err != nil {
		t.Fatalf("retry after failed compute: %v", err)
	}
	if calls != 2 {
		t.Fatalf("%d calls, want 2 (error retracted, success recomputed)", calls)
	}
}
