package transport

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"orcf/internal/obs"
)

// ErrBackoff is returned by ReconnectingClient.Send while the collector is
// unreachable and redialing is governed by the backoff window (both when a
// dial just failed and while the next attempt is deliberately delayed). It
// is a temporary condition — the client is alive and will retry — and is
// distinct from ErrClosed, which is terminal. Callers polling with
// errors.Is(err, ErrClosed) must not mistake a backing-off client for a
// dead one; agent.Agent treats ErrBackoff like backpressure (the step is
// accounted as suppressed and the loop continues).
var ErrBackoff = errors.New("transport: redial backing off")

// ReconnectingClient wraps Client with automatic redial. Monitoring
// semantics make this simple: measurements are idempotent snapshots keyed by
// (node, step) and the store keeps only the newest, so losing a few samples
// during an outage is acceptable — the client never buffers, it just
// re-establishes the stream and lets the adaptive policy's future
// transmissions repair staleness.
//
// Send attempts one redial per call when the connection is down, with a
// capped, jittered exponential backoff between redial attempts: the backoff
// ceiling doubles per consecutive failure, and the actual wait is drawn
// uniformly from [ceiling/2, ceiling]. Without the jitter a collector
// restart would make every agent redial in lockstep (they all failed at the
// same moment and double deterministically), hammering the recovering
// collector with synchronized waves.
type ReconnectingClient struct {
	addr string
	node int

	// closed and active live outside mu so Close can interrupt a Send that
	// is stalled inside the lock (e.g. blocked on a non-draining
	// collector): it flags the client closed and closes the live
	// connection without waiting for mu.
	closed atomic.Bool
	active atomic.Pointer[Client]

	mu          sync.Mutex
	client      *Client
	nextAttempt time.Time
	backoff     time.Duration
	rng         *rand.Rand

	minBackoff time.Duration
	maxBackoff time.Duration

	// dials counts successful connections (so dials-1 is the redial count)
	// and dialFailures the attempts that opened or extended the backoff
	// window — the agent-side counterparts of the collector's
	// orcf_ingest_reconnects_total.
	dials        obs.Counter
	dialFailures obs.Counter
}

var _ interface {
	Send(step int, values []float64) error
	Close() error
} = (*ReconnectingClient)(nil)

// NewReconnectingClient prepares a lazily-dialed client for the node. No
// connection is attempted until the first Send.
func NewReconnectingClient(addr string, node int) *ReconnectingClient {
	return &ReconnectingClient{
		addr:       addr,
		node:       node,
		rng:        rand.New(rand.NewPCG(rand.Uint64(), uint64(node))),
		minBackoff: 50 * time.Millisecond,
		maxBackoff: 5 * time.Second,
	}
}

// SetBackoff overrides the redial backoff bounds (useful in tests).
func (r *ReconnectingClient) SetBackoff(minB, maxB time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if minB > 0 {
		r.minBackoff = minB
	}
	if maxB >= r.minBackoff {
		r.maxBackoff = maxB
	}
}

// setClient updates the live connection under mu, mirroring it into the
// atomic pointer Close reads.
func (r *ReconnectingClient) setClient(c *Client) {
	r.client = c
	r.active.Store(c)
}

// Send transmits one measurement, redialing if necessary. It returns an
// error when the measurement could not be delivered in this call; callers
// may simply try again on their next sample. While the redial backoff
// window is open the error matches ErrBackoff.
func (r *ReconnectingClient) Send(step int, values []float64) error {
	if r.closed.Load() {
		return ErrClosed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return ErrClosed
	}
	if r.client == nil {
		if err := r.redialLocked(); err != nil {
			return err
		}
	}
	// The nested Client.Send arms its own write deadline around the encode,
	// and Close never takes r.mu — it flips the atomic and closes the conn,
	// which interrupts an in-flight write — so holding r.mu here is bounded.
	//orcflint:ignore lockio Client.Send arms its own write deadline; Close interrupts via conn close without r.mu
	if err := r.client.Send(step, values); err != nil {
		// Connection went bad: drop it and try one immediate redial.
		_ = r.client.Close()
		r.setClient(nil)
		if r.closed.Load() {
			return ErrClosed
		}
		if err := r.redialLocked(); err != nil {
			return fmt.Errorf("transport: send failed and redial pending: %w", err)
		}
		//orcflint:ignore lockio Client.Send arms its own write deadline; Close interrupts via conn close without r.mu
		if err := r.client.Send(step, values); err != nil {
			_ = r.client.Close()
			r.setClient(nil)
			return fmt.Errorf("transport: send after redial: %w", err)
		}
	}
	return nil
}

// redialLocked attempts to establish a connection, honoring the backoff
// window. The caller holds r.mu.
func (r *ReconnectingClient) redialLocked() error {
	now := time.Now()
	if now.Before(r.nextAttempt) {
		return fmt.Errorf("transport: redial backoff until %s: %w",
			r.nextAttempt.Format(time.RFC3339Nano), ErrBackoff)
	}
	c, err := Dial(r.addr, r.node)
	if err != nil {
		r.dialFailures.Inc()
		if r.backoff == 0 {
			r.backoff = r.minBackoff
		} else {
			r.backoff *= 2
			if r.backoff > r.maxBackoff {
				r.backoff = r.maxBackoff
			}
		}
		r.nextAttempt = now.Add(r.jitterLocked(r.backoff))
		// The failed dial opens (or extends) the backoff window, so this
		// too is the transient backing-off state, not a dead client.
		return fmt.Errorf("transport: redial %s: %w: %w", r.addr, err, ErrBackoff)
	}
	r.setClient(c)
	r.dials.Inc()
	r.backoff = 0
	r.nextAttempt = time.Time{}
	if r.closed.Load() {
		// Close raced the dial; don't leak the fresh connection.
		_ = c.Close()
		r.setClient(nil)
		return ErrClosed
	}
	return nil
}

// jitterLocked draws the actual redial wait uniformly from [b/2, b] ("equal
// jitter"), desynchronizing agents whose connections died simultaneously.
// The caller holds r.mu.
func (r *ReconnectingClient) jitterLocked(b time.Duration) time.Duration {
	half := b / 2
	return half + time.Duration(r.rng.Int64N(int64(half)+1))
}

// Reconnects reports how many times the client successfully redialed after
// its initial connection.
func (r *ReconnectingClient) Reconnects() int64 {
	if n := r.dials.Value(); n > 1 {
		return n - 1
	}
	return 0
}

// BackoffFailures reports how many dial attempts failed and opened (or
// extended) the backoff window.
func (r *ReconnectingClient) BackoffFailures() int64 { return r.dialFailures.Value() }

// Connected reports whether a live connection is currently held.
func (r *ReconnectingClient) Connected() bool {
	if r.closed.Load() {
		return false
	}
	return r.active.Load() != nil
}

// Close tears down the connection; subsequent Sends fail with ErrClosed.
// It does not wait for an in-flight Send — it interrupts it by closing the
// underlying connection (Client.Close is itself non-blocking).
func (r *ReconnectingClient) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	if c := r.active.Load(); c != nil {
		return c.Close()
	}
	return nil
}
