package hungarian

import (
	"errors"
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMaxWeightMatchSimple(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name      string
		w         [][]float64
		wantTotal float64
	}{
		{
			name:      "identity best",
			w:         [][]float64{{10, 1}, {1, 10}},
			wantTotal: 20,
		},
		{
			name:      "anti-diagonal best",
			w:         [][]float64{{1, 10}, {10, 1}},
			wantTotal: 20,
		},
		{
			name:      "single",
			w:         [][]float64{{-3}},
			wantTotal: -3,
		},
		{
			name: "three by three",
			w: [][]float64{
				{7, 5, 11},
				{5, 4, 1},
				{9, 3, 2},
			},
			// 11 + 4 + 9 = 24 via (0→2, 1→1, 2→0)
			wantTotal: 24,
		},
		{
			name: "negative weights",
			w: [][]float64{
				{-1, -2},
				{-2, -5},
			},
			wantTotal: -4, // (0→1, 1→0): −2−2 beats −1−5
		},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			assign, total, err := MaxWeightMatch(tt.w)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(total-tt.wantTotal) > 1e-9 {
				t.Fatalf("total = %v, want %v (assign %v)", total, tt.wantTotal, assign)
			}
			assertPermutation(t, assign)
			// Reported total must match the assignment.
			var sum float64
			for i, j := range assign {
				sum += tt.w[i][j]
			}
			if math.Abs(sum-total) > 1e-9 {
				t.Fatalf("assignment sum %v != reported total %v", sum, total)
			}
		})
	}
}

func TestMaxWeightMatchErrors(t *testing.T) {
	t.Parallel()
	if _, _, err := MaxWeightMatch(nil); !errors.Is(err, ErrNotSquare) {
		t.Fatalf("empty: want ErrNotSquare, got %v", err)
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, _, err := MaxWeightMatch(ragged); !errors.Is(err, ErrNotSquare) {
		t.Fatalf("ragged: want ErrNotSquare, got %v", err)
	}
}

// TestAgainstBruteForce checks optimality on random instances by exhaustive
// enumeration of permutations up to n=7.
func TestAgainstBruteForce(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed*2654435761+1))
		n := 1 + int(seed%7)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = math.Round(rng.NormFloat64()*100) / 10
			}
		}
		_, got, err := MaxWeightMatch(w)
		if err != nil {
			return false
		}
		want := bruteForceMax(w)
		return math.Abs(got-want) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 120, Rand: mrand.New(mrand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLargeInstanceIsPermutation(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(17, 23))
	n := 60
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}
	assign, total, err := MaxWeightMatch(w)
	if err != nil {
		t.Fatal(err)
	}
	assertPermutation(t, assign)
	// Total must be at least as good as the identity assignment.
	var id float64
	for i := 0; i < n; i++ {
		id += w[i][i]
	}
	if total < id-1e-9 {
		t.Fatalf("optimal total %v worse than identity %v", total, id)
	}
}

func assertPermutation(t *testing.T, assign []int) {
	t.Helper()
	seen := make(map[int]bool, len(assign))
	for _, j := range assign {
		if j < 0 || j >= len(assign) {
			t.Fatalf("assignment %v out of range", assign)
		}
		if seen[j] {
			t.Fatalf("assignment %v not a permutation", assign)
		}
		seen[j] = true
	}
}

func bruteForceMax(w [][]float64) float64 {
	n := len(w)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(-1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var s float64
			for i, j := range perm {
				s += w[i][j]
			}
			if s > best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}
