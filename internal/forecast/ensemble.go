package forecast

import (
	"fmt"
	"time"

	"orcf/internal/parallel"
)

// EnsembleConfig controls the per-cluster model management of §VI-A3.
type EnsembleConfig struct {
	// Clusters is K, the number of models (one per cluster). Required.
	Clusters int
	// Dims is the number of resource dimensions per centroid (models are
	// univariate; one model per (cluster, dim)). Zero means 1.
	Dims int
	// InitialCollection is the warm-up length before the first training.
	// Zero means the paper's 1000.
	InitialCollection int
	// RetrainEvery is the retraining period in steps. Zero means the
	// paper's 288 (one day of 5-minute samples).
	RetrainEvery int
	// FitWindow caps the history length used per fit (most recent portion);
	// zero means all history. The paper permits "all (or a subset of) the
	// historical cluster centroids". When set, the ensemble also trims the
	// retained series after each refit to the portion future refits and
	// restores can still need, bounding memory in long-running deployments.
	FitWindow int
	// Builder constructs each model — the single-family path. Required
	// unless Candidates is set (exactly one of the two must be provided).
	Builder Builder
	// Candidates enables zoo mode: one model instance per candidate per
	// (cluster, dim), all trained and updated on the same series, with the
	// champion per (cluster, dim) selected online by rolling accuracy (see
	// Selection). A single-candidate zoo behaves bit-identically to the
	// equivalent Builder configuration, plus the accuracy bookkeeping.
	Candidates []Candidate
	// Selection tunes the champion/challenger selector; ignored unless
	// Candidates is set. Zero values select the defaults (window 64,
	// margin 0, streak 3, metric "mae").
	Selection SelectionConfig
	// Workers bounds the concurrency of per-model fitting and forecasting
	// across the candidates×K×Dims independent models. Zero means GOMAXPROCS;
	// 1 forces the serial path. Results are identical for any value because
	// every model owns its state outright.
	Workers int
}

func (c EnsembleConfig) withDefaults() EnsembleConfig {
	if c.Dims == 0 {
		c.Dims = 1
	}
	if c.InitialCollection == 0 {
		c.InitialCollection = 1000
	}
	if c.RetrainEvery == 0 {
		c.RetrainEvery = 288
	}
	if len(c.Candidates) > 0 {
		c.Selection = c.Selection.WithDefaults()
	}
	return c
}

// Ensemble manages the forecasting models over the evolving centroid series:
// it buffers the initial collection phase, trains models at the end of it,
// feeds every new centroid to the transient state, and retrains periodically
// — exactly the schedule in §VI-A3. In zoo mode (Candidates) it runs every
// candidate family in lockstep, scores each candidate's previous 1-step
// forecast against the newly observed centroid, and serves Forecast from the
// per-(cluster, dim) champion chosen by the hysteresis selector.
type Ensemble struct {
	cfg    EnsembleConfig
	names  []string      // candidate names; exactly one in single-family mode
	models [][][]Model   // [candidate][cluster][dim]
	series [][][]float64 // [cluster][dim][t − start]
	start  int           // logical step index of series[j][d][0] (trimming)
	t      int
	ready  bool

	// Zoo-mode selection state (nil/false in single-family mode).
	zoo    bool
	acc    *Accuracy
	sel    *selector
	pred   []float64 // cached 1-step forecasts [(c·Clusters+j)·Dims+d]
	predOK bool

	trainTime  time.Duration
	trainRuns  int
	lastrefits int
}

// NewEnsemble validates the configuration and returns an empty ensemble.
func NewEnsemble(cfg EnsembleConfig) (*Ensemble, error) {
	cfg = cfg.withDefaults()
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("forecast: %d clusters: %w", cfg.Clusters, ErrBadInput)
	}
	e := &Ensemble{cfg: cfg, zoo: len(cfg.Candidates) > 0}
	switch {
	case e.zoo:
		if cfg.Builder != nil {
			return nil, fmt.Errorf("forecast: both Builder and Candidates set: %w", ErrBadInput)
		}
		if err := cfg.Selection.Validate(); err != nil {
			return nil, err
		}
		seen := make(map[string]bool, len(cfg.Candidates))
		for _, cand := range cfg.Candidates {
			if cand.Name == "" || cand.Builder == nil {
				return nil, fmt.Errorf("forecast: candidate %q with nil builder or empty name: %w",
					cand.Name, ErrBadInput)
			}
			if seen[cand.Name] {
				return nil, fmt.Errorf("forecast: duplicate candidate %q: %w", cand.Name, ErrBadInput)
			}
			seen[cand.Name] = true
			e.names = append(e.names, cand.Name)
		}
		cells := cfg.Clusters * cfg.Dims
		acc, err := NewAccuracy(cfg.Clusters, cfg.Dims, len(cfg.Candidates), cfg.Selection.Window)
		if err != nil {
			return nil, err
		}
		e.acc = acc
		e.sel = newSelector(cells, len(cfg.Candidates), cfg.Selection.Streak, cfg.Selection.Margin)
	case cfg.Builder == nil:
		return nil, fmt.Errorf("forecast: nil model builder: %w", ErrBadInput)
	}

	builders := cfg.Candidates
	if !e.zoo {
		builders = []Candidate{{Builder: cfg.Builder}}
	}
	e.models = make([][][]Model, len(builders))
	for c, cand := range builders {
		e.models[c] = make([][]Model, cfg.Clusters)
		for j := range e.models[c] {
			e.models[c][j] = make([]Model, cfg.Dims)
			for d := range e.models[c][j] {
				e.models[c][j][d] = cand.Builder()
			}
		}
	}
	if !e.zoo {
		e.names = []string{e.models[0][0][0].Name()}
	}
	e.series = make([][][]float64, cfg.Clusters)
	for j := range e.series {
		e.series[j] = make([][]float64, cfg.Dims)
	}
	return e, nil
}

// Observe ingests this step's centroids (Clusters × Dims). It triggers the
// initial training at the end of the collection phase and retraining every
// RetrainEvery steps thereafter. In zoo mode it first scores every
// candidate's cached 1-step forecast against the new centroids and runs one
// champion/challenger evaluation per (cluster, dim), then recomputes the
// 1-step forecasts for the next scoring round; Forecast is pure for every
// model family, so the scoring never perturbs the models themselves.
func (e *Ensemble) Observe(centroids [][]float64) error {
	if len(centroids) != e.cfg.Clusters {
		return fmt.Errorf("forecast: %d centroids, want %d: %w",
			len(centroids), e.cfg.Clusters, ErrBadInput)
	}
	for j, c := range centroids {
		if len(c) != e.cfg.Dims {
			return fmt.Errorf("forecast: centroid %d has dim %d, want %d: %w",
				j, len(c), e.cfg.Dims, ErrBadInput)
		}
	}
	if e.zoo && e.predOK {
		e.score(centroids)
	}
	for j, c := range centroids {
		for d, v := range c {
			e.series[j][d] = append(e.series[j][d], v)
			if e.ready {
				for _, models := range e.models {
					models[j][d].Update(v)
				}
			}
		}
	}
	e.t++
	switch {
	case !e.ready && e.t >= e.cfg.InitialCollection:
		if err := e.refit(); err != nil {
			return err
		}
	case e.ready && (e.t-e.lastrefits) >= e.cfg.RetrainEvery:
		if err := e.refit(); err != nil {
			return err
		}
	}
	if e.zoo && e.ready {
		return e.refreshPred()
	}
	return nil
}

// score records each candidate's signed 1-step forecast error against the
// newly observed centroids and runs one selector evaluation per
// (cluster, dim) cell.
func (e *Ensemble) score(centroids [][]float64) {
	dims := e.cfg.Dims
	cells := e.cfg.Clusters * dims
	rmse := e.cfg.Selection.Metric == "rmse"
	for j, c := range centroids {
		for d, v := range c {
			for cand := range e.models {
				e.acc.Record(j, d, cand, e.pred[cand*cells+j*dims+d]-v)
			}
			e.sel.evaluate(j*dims+d, func(cand int) (float64, bool) {
				var s float64
				var n int
				if rmse {
					s, n = e.acc.RMSE(j, d, cand)
				} else {
					s, n = e.acc.MAE(j, d, cand)
				}
				return s, n > 0
			})
		}
	}
}

// refreshPred caches every candidate's 1-step forecast for the next scoring
// round. Forecast is pure, so this neither mutates models nor consumes RNG.
func (e *Ensemble) refreshPred() error {
	dims := e.cfg.Dims
	cells := e.cfg.Clusters * dims
	if e.pred == nil {
		e.pred = make([]float64, len(e.models)*cells)
	}
	err := parallel.ForEach(e.cfg.Workers, len(e.models)*cells, func(i int) error {
		c, r := i/cells, i%cells
		j, d := r/dims, r%dims
		f, err := e.models[c][j][d].Forecast(1)
		if err != nil {
			return fmt.Errorf("forecast: scoring %s cluster %d dim %d: %w", e.names[c], j, d, err)
		}
		e.pred[i] = f[0]
		return nil
	})
	if err != nil {
		return err
	}
	e.predOK = true
	return nil
}

// refit trains every model on the accumulated series, tracking wall time.
// The candidates×K×Dims fits are independent (each model owns its state and
// reads its own series), so they run on the worker pool; ARIMA grid search
// and LSTM epochs dominate retraining wall time and scale with cores.
func (e *Ensemble) refit() error {
	start := time.Now()
	dims := e.cfg.Dims
	cells := e.cfg.Clusters * dims
	err := parallel.ForEach(e.cfg.Workers, len(e.models)*cells, func(i int) error {
		c, r := i/cells, i%cells
		j, d := r/dims, r%dims
		s := e.series[j][d]
		if e.cfg.FitWindow > 0 && len(s) > e.cfg.FitWindow {
			s = s[len(s)-e.cfg.FitWindow:]
		}
		if err := e.models[c][j][d].Fit(s); err != nil {
			return fmt.Errorf("forecast: fitting %s cluster %d dim %d: %w", e.names[c], j, d, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.trainTime += time.Since(start)
	e.trainRuns++
	e.lastrefits = e.t
	e.ready = true
	e.trim()
	return nil
}

// trim drops the series prefix no future fit can read: after a refit at step
// t, live refits and restore-refits only ever see the FitWindow-suffix ending
// at or after lastrefits, so everything before lastrefits − FitWindow is
// dead weight. The copy is in place (no allocation) and the freed capacity is
// reused by subsequent appends, bounding steady-state memory at roughly
// FitWindow + RetrainEvery values per (cluster, dim) instead of growing
// forever. No-op without a FitWindow, where restores refit on full history.
func (e *Ensemble) trim() {
	if e.cfg.FitWindow <= 0 {
		return
	}
	keepFrom := e.lastrefits - e.cfg.FitWindow
	if keepFrom <= e.start {
		return
	}
	cut := keepFrom - e.start
	for j := range e.series {
		for d := range e.series[j] {
			s := e.series[j][d]
			n := copy(s, s[cut:])
			e.series[j][d] = s[:n]
		}
	}
	e.start = keepFrom
}

// Ready reports whether the initial collection phase has completed and
// models are trained.
func (e *Ensemble) Ready() bool { return e.ready }

// Steps returns the number of observed time steps.
func (e *Ensemble) Steps() int { return e.t }

// championIdx returns the candidate index serving (cluster j, dim d).
func (e *Ensemble) championIdx(j, d int) int {
	if !e.zoo {
		return 0
	}
	return e.sel.champ[j*e.cfg.Dims+d]
}

// Forecast returns h-step-ahead centroid forecasts, indexed
// [cluster][dim][step], produced by each (cluster, dim) cell's champion
// model. It fails with ErrNotFitted during the initial collection phase.
func (e *Ensemble) Forecast(h int) ([][][]float64, error) {
	if !e.ready {
		return nil, ErrNotFitted
	}
	dims := e.cfg.Dims
	out := make([][][]float64, e.cfg.Clusters)
	for j := range out {
		out[j] = make([][]float64, dims)
	}
	err := parallel.ForEach(e.cfg.Workers, e.cfg.Clusters*dims, func(i int) error {
		j, d := i/dims, i%dims
		f, err := e.models[e.championIdx(j, d)][j][d].Forecast(h)
		if err != nil {
			return fmt.Errorf("forecast: cluster %d dim %d: %w", j, d, err)
		}
		out[j][d] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Series returns a copy of the retained centroid series for one
// (cluster, dim) pair — the full history without a FitWindow, and the
// still-needed suffix (see SeriesStart) once trimming has engaged.
func (e *Ensemble) Series(j, d int) []float64 {
	if j < 0 || j >= e.cfg.Clusters || d < 0 || d >= e.cfg.Dims {
		return nil
	}
	return append([]float64(nil), e.series[j][d]...)
}

// SeriesStart returns the logical step index of the first retained series
// value (0 until FitWindow-based trimming discards a prefix).
func (e *Ensemble) SeriesStart() int { return e.start }

// TrainingTime returns the cumulative wall-clock time of the (re)training
// rounds and their count. Rounds fit their models on the worker pool, so the
// duration shrinks with Workers/cores — it measures what the system actually
// stalls on maintenance, not summed per-model CPU time (for a single model's
// fitting cost, see e.g. the ARIMA/LSTM FitDuration accessors).
func (e *Ensemble) TrainingTime() (time.Duration, int) { return e.trainTime, e.trainRuns }

// Model returns the champion model for a (cluster, dim) pair, or nil out of
// range. It is exposed for inspection in experiments (e.g. reading the
// selected ARIMA order).
func (e *Ensemble) Model(j, d int) Model {
	if j < 0 || j >= e.cfg.Clusters || d < 0 || d >= e.cfg.Dims {
		return nil
	}
	return e.models[e.championIdx(j, d)][j][d]
}

// CandidateAccuracy is one candidate's rolling accuracy inside a
// (cluster, dim) selection cell.
type CandidateAccuracy struct {
	// Name is the candidate's registered family name.
	Name string
	// MAE and RMSE are the rolling errors over the selection window (0 until
	// the first evaluation; see Evals).
	MAE, RMSE float64
	// Evals counts the candidate's lifetime evaluations in this cell.
	Evals int64
	// Streak is the candidate's current consecutive-win count against the
	// cell's champion.
	Streak int
}

// CellSelection is the champion/challenger state of one (cluster, dim) cell.
type CellSelection struct {
	// Champion is the serving candidate's family name.
	Champion string
	// ChampionIdx is the serving candidate's index into Candidates.
	ChampionIdx int
	// Switches counts champion promotions in this cell so far.
	Switches int
	// Candidates holds the per-candidate rolling accuracy, in zoo order.
	Candidates []CandidateAccuracy
}

// SelectionInfo is an immutable deep-copied view of an ensemble's zoo
// selection state, safe to publish in snapshots and serve concurrently.
type SelectionInfo struct {
	// Families lists the candidate family names in zoo order.
	Families []string
	// Window, Margin, Streak, and Metric echo the resolved SelectionConfig.
	Window int
	Margin float64
	Streak int
	Metric string
	// SwitchTotal counts champion promotions across all cells.
	SwitchTotal int
	// Evaluations counts lifetime scored forecasts summed over cells and
	// candidates.
	Evaluations int64
	// Cells holds the per-(cluster, dim) selection state.
	Cells [][]CellSelection
}

// Selection returns a deep-copied view of the zoo selection state, or nil in
// single-family mode. The result shares no memory with the ensemble.
func (e *Ensemble) Selection() *SelectionInfo {
	if !e.zoo {
		return nil
	}
	dims := e.cfg.Dims
	info := &SelectionInfo{
		Families:    append([]string(nil), e.names...),
		Window:      e.cfg.Selection.Window,
		Margin:      e.cfg.Selection.Margin,
		Streak:      e.cfg.Selection.Streak,
		Metric:      e.cfg.Selection.Metric,
		SwitchTotal: e.sel.total,
		Cells:       make([][]CellSelection, e.cfg.Clusters),
	}
	for j := range info.Cells {
		info.Cells[j] = make([]CellSelection, dims)
		for d := range info.Cells[j] {
			cell := j*dims + d
			cs := CellSelection{
				ChampionIdx: e.sel.champ[cell],
				Champion:    e.names[e.sel.champ[cell]],
				Switches:    e.sel.switches[cell],
				Candidates:  make([]CandidateAccuracy, len(e.names)),
			}
			for c := range e.names {
				mae, _ := e.acc.MAE(j, d, c)
				rmse, _ := e.acc.RMSE(j, d, c)
				evals := e.acc.Evals(j, d, c)
				cs.Candidates[c] = CandidateAccuracy{
					Name:   e.names[c],
					MAE:    mae,
					RMSE:   rmse,
					Evals:  evals,
					Streak: e.sel.streak[cell*len(e.names)+c],
				}
				info.Evaluations += evals
			}
			info.Cells[j][d] = cs
		}
	}
	return info
}
