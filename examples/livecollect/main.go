// Livecollect: the collection plane running for real — a central TCP
// collector and a fleet of in-process node agents, each filtering its
// measurements through the adaptive transmission policy before sending.
// The fleet is mixed-version on purpose: even-numbered nodes speak the
// legacy v1 per-measurement gob stream, odd-numbered nodes the batched v2
// framing (with local-clock carriage), and the collector serves both on one
// port by peeking the first connection byte. The central side clusters
// whatever it has received and prints the evolving centroids plus the
// realized per-node frequencies the store accounted (eq. 5) — exact for v2
// nodes, last-accepted-step approximations for v1 nodes.
//
// Run with:
//
//	go run ./examples/livecollect
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"time"

	"orcf"
	"orcf/internal/cluster"
	"orcf/internal/transmit"
	"orcf/internal/transport"
)

const (
	nodes  = 24
	steps  = 400
	budget = 0.3
	k      = 3
)

// sender is the common surface of the v1 and v2 clients.
type sender interface {
	Send(step int, values []float64) error
	Close() error
}

func main() {
	ds, err := orcf.GenerateTrace(orcf.GeneratorConfig{
		Name: "live", Nodes: nodes, Steps: steps, Seed: 21,
	})
	if err != nil {
		log.Fatalf("generating trace: %v", err)
	}

	store := transport.NewStore()
	server, err := transport.NewServer(store, nil)
	if err != nil {
		log.Fatalf("creating server: %v", err)
	}
	server.SetIdleTimeout(time.Minute)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatalf("listening: %v", err)
	}
	defer server.Close()
	fmt.Printf("collector listening on %s (mixed v1 gob + v2 framed fleet)\n", addr)

	// Node agents: each owns a TCP connection and an adaptive policy. A
	// step barrier keeps the demo deterministic-ish: all agents process
	// step t before the central node clusters it.
	var wg sync.WaitGroup
	stepBarrier := make([]chan int, nodes)
	doneBarrier := make([]chan struct{}, nodes)
	totalTx := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		stepBarrier[i] = make(chan int)
		doneBarrier[i] = make(chan struct{})
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			var client sender
			var clock interface{ Advance(int) }
			if node%2 == 0 {
				c, err := transport.Dial(addr, node)
				if err != nil {
					log.Printf("node %d: dial v1: %v", node, err)
					return
				}
				c.SetWriteTimeout(5 * time.Second)
				client = c
			} else {
				c, err := transport.DialBatch(addr, node, transport.BatchOptions{
					BatchSize: 8, Linger: 2 * time.Millisecond,
				})
				if err != nil {
					log.Printf("node %d: dial v2: %v", node, err)
					return
				}
				client, clock = c, c
			}
			defer client.Close()
			policy, err := transmit.NewAdaptive(transmit.AdaptiveConfig{Budget: budget})
			if err != nil {
				log.Printf("node %d: policy: %v", node, err)
				return
			}
			var stored []float64
			for t := range stepBarrier[node] {
				x := ds.At(t, node)
				if clock != nil {
					clock.Advance(t + 1) // v2: suppressed steps advance eq. 5 too
				}
				if policy.Decide(t+1, x, stored) {
					if err := client.Send(t+1, x); err != nil {
						log.Printf("node %d: send: %v", node, err)
						return
					}
					stored = append(stored[:0], x...)
					totalTx[node]++
				}
				doneBarrier[node] <- struct{}{}
			}
		}(i)
	}

	tracker, err := cluster.NewTracker(cluster.Config{K: k}, rand.New(rand.NewPCG(5, 5)))
	if err != nil {
		log.Fatalf("tracker: %v", err)
	}

	for t := 0; t < steps; t++ {
		for i := 0; i < nodes; i++ {
			stepBarrier[i] <- t
		}
		for i := 0; i < nodes; i++ {
			<-doneBarrier[i]
		}
		// Central side: cluster the latest stored CPU values. Nodes that
		// have not transmitted yet keep their previous value, which is the
		// "intermittent measurements" property from the paper. (v2 batches
		// may still be in flight — also intermittency, by design.)
		if store.Len() < nodes {
			continue // first steps until everyone said hello+sent once
		}
		points := make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			m, _ := store.Latest(i)
			points[i] = []float64{m.Values[0]}
		}
		step, err := tracker.Update(points)
		if err != nil {
			log.Fatalf("clustering at %d: %v", t, err)
		}
		if (t+1)%80 == 0 {
			fmt.Printf("step %3d | CPU centroids:", t+1)
			for _, c := range step.Centroids {
				fmt.Printf(" %.3f", c[0])
			}
			fmt.Println()
		}
	}
	for i := 0; i < nodes; i++ {
		close(stepBarrier[i])
	}
	wg.Wait() // agents close their clients: v2 batches + final clocks flush

	var tx int
	for _, n := range totalTx {
		tx += n
	}
	fmt.Printf("total transmissions: %d of %d possible (%.1f%%, budget %.0f%%)\n",
		tx, nodes*steps, 100*float64(tx)/float64(nodes*steps), budget*100)

	// eq. 5 as the collector accounted it: v2 nodes (odd) carry their local
	// clock, so their central frequency denominator is the true step count.
	deadline := time.Now().Add(5 * time.Second)
	for store.Stats()[1].LocalStep < steps && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stats := store.Stats()
	var v1f, v2f float64
	for i := 0; i < nodes; i++ {
		if i%2 == 0 {
			v1f += stats[i].Frequency
		} else {
			v2f += stats[i].Frequency
		}
	}
	fmt.Printf("central eq. 5 mean frequency | v1 nodes %.3f (denominator: last accepted step) | v2 nodes %.3f (exact local clock)\n",
		v1f/(nodes/2), v2f/(nodes/2))
	if n := server.ProtocolErrors(); n != 0 {
		log.Fatalf("%d protocol errors in a clean run", n)
	}
}
