package transport

// Wire protocol v2: versioned binary framing for the collection plane.
//
// A v2 connection opens with a 5-byte magic — 0x00 'O' 'R' 'C' followed by
// the protocol version byte — and then carries a sequence of frames. The
// leading 0x00 is what makes version negotiation work: a gob stream (the v1
// protocol) always starts with a non-zero uvarint message length, so the
// server can peek one byte and route the connection to the right decoder.
// v1 agents keep connecting unchanged.
//
// Frame layout (multi-byte integers big-endian):
//
//	u32  length of (type byte + payload), 1 ≤ length ≤ maxFrameBytes
//	u8   frame type (frameHello | frameBatch | frameHeartbeat)
//	...  payload (length-1 bytes)
//	u32  CRC32-C over (type byte + payload)
//
// Payloads (uvarint = unsigned LEB128 as in encoding/binary):
//
//	hello      uvarint node, uvarint flags       (bit 0: mux — records may
//	                                              carry any node id)
//	batch      u8 flags (bit 0: the rest of the payload is uvarint rawLen
//	           followed by a DEFLATE stream of the body), body:
//	           uvarint localStep, uvarint count, count × record
//	record     uvarint node, uvarint step, uvarint dims, dims × u64
//	           little-endian IEEE-754 bits of each value
//	heartbeat  uvarint node, uvarint localStep
//
// localStep is the sender's current local time step — the eq. 5 denominator.
// It advances the store's per-node clock even when the adaptive policy
// suppressed every sample in the interval (heartbeat frames exist for
// exactly that case), so centrally-computed transmission frequencies match
// the agent-side meter instead of overestimating. A localStep of 0 means
// "no clock information" and is ignored.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// magicByte opens every v2 connection. Gob streams never start with
	// 0x00 (a zero message length is invalid), so this byte alone
	// disambiguates the two protocol generations.
	magicByte = 0x00
	// protoV2 is the current framed-protocol version.
	protoV2 = 0x02
)

// magicV2 is the connection preamble: magicByte, "ORC", version.
var magicV2 = [5]byte{magicByte, 'O', 'R', 'C', protoV2}

// Frame types.
const (
	frameHello     = 0x01
	frameBatch     = 0x02
	frameHeartbeat = 0x03
)

// Hello flags.
const (
	// helloFlagMux marks a multiplexed connection: batch records and
	// heartbeats may carry any node id, not just the hello's. Used by
	// per-rack aggregators and the loadgen fleet simulator.
	helloFlagMux = 1 << 0
)

// Batch flags.
const (
	batchFlagCompressed = 1 << 0
)

// maxFrameBytes bounds a single frame so a corrupt or hostile length prefix
// cannot make the server allocate unboundedly. 16 MiB fits > 100k records.
const maxFrameBytes = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errMalformed tags protocol-violation decode errors, as opposed to plain
// I/O errors (EOF, timeouts) from a vanished peer.
var errMalformed = errors.New("transport: malformed frame")

// appendFrame appends a complete frame (length, type, payload, CRC) to dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+len(payload)))
	body := len(dst)
	dst = append(dst, typ)
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[body:], crcTable))
}

// appendHelloPayload encodes a hello payload.
func appendHelloPayload(dst []byte, node int, flags uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(node))
	return binary.AppendUvarint(dst, flags)
}

// appendHeartbeatPayload encodes a heartbeat payload.
func appendHeartbeatPayload(dst []byte, node, localStep int) []byte {
	dst = binary.AppendUvarint(dst, uint64(node))
	return binary.AppendUvarint(dst, uint64(localStep))
}

// appendRecord encodes one varint-packed batch record.
func appendRecord(dst []byte, m Measurement) []byte {
	dst = binary.AppendUvarint(dst, uint64(m.Node))
	dst = binary.AppendUvarint(dst, uint64(m.Step))
	dst = binary.AppendUvarint(dst, uint64(len(m.Values)))
	for _, v := range m.Values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// appendBatchBody encodes the (uncompressed) batch body.
func appendBatchBody(dst []byte, localStep int, recs []Measurement) []byte {
	dst = binary.AppendUvarint(dst, uint64(localStep))
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for _, m := range recs {
		dst = appendRecord(dst, m)
	}
	return dst
}

// batchEncoder builds batch payloads, reusing its scratch buffers and (when
// compressing) a single flate writer across flushes. Not safe for
// concurrent use — each BatchClient writer goroutine owns one.
type batchEncoder struct {
	compress bool
	payload  []byte // flags byte + (possibly compressed) body, reused
	raw      []byte // uncompressed body scratch for the compressing path
	frame    []byte // complete-frame scratch for the owning writer
	comp     bytes.Buffer
	fw       *flate.Writer
}

// encode returns the batch payload (flags byte included) for one flush.
// The returned slice aliases the encoder's scratch and is valid until the
// next call.
func (e *batchEncoder) encode(localStep int, recs []Measurement) ([]byte, error) {
	if !e.compress {
		e.payload = append(e.payload[:0], 0) // flags byte, then the body in place
		e.payload = appendBatchBody(e.payload, localStep, recs)
		return e.payload, nil
	}
	e.raw = appendBatchBody(e.raw[:0], localStep, recs)
	e.comp.Reset()
	e.comp.WriteByte(batchFlagCompressed)
	e.comp.Write(binary.AppendUvarint(nil, uint64(len(e.raw))))
	if e.fw == nil {
		fw, err := flate.NewWriter(&e.comp, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("transport: flate init: %w", err)
		}
		e.fw = fw
	} else {
		e.fw.Reset(&e.comp)
	}
	if _, err := e.fw.Write(e.raw); err != nil {
		return nil, fmt.Errorf("transport: compress batch: %w", err)
	}
	if err := e.fw.Close(); err != nil {
		return nil, fmt.Errorf("transport: compress batch: %w", err)
	}
	return e.comp.Bytes(), nil
}

// frameReader reads v2 frames from a buffered connection, reusing one
// buffer across frames.
type frameReader struct {
	br  *bufio.Reader
	buf []byte
}

// next reads one frame and verifies its CRC. The returned payload aliases
// the reader's buffer and is valid until the next call. I/O errors are
// returned as-is; framing violations wrap errMalformed.
func (r *frameReader) next() (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("frame length %d: %w", n, errMalformed)
	}
	need := int(n) + 4 // type+payload plus trailing CRC
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	r.buf = r.buf[:need]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		return 0, nil, err
	}
	body, sum := r.buf[:n], binary.BigEndian.Uint32(r.buf[n:])
	if crc32.Checksum(body, crcTable) != sum {
		return 0, nil, fmt.Errorf("frame CRC mismatch: %w", errMalformed)
	}
	return body[0], body[1:], nil
}

// uvarint decodes one uvarint that must fit a non-negative int.
func uvarint(p []byte) (int, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 || v > uint64(math.MaxInt) {
		return 0, nil, fmt.Errorf("bad uvarint: %w", errMalformed)
	}
	return int(v), p[n:], nil
}

// parseHello decodes a hello payload.
func parseHello(p []byte) (node int, flags int, err error) {
	node, p, err = uvarint(p)
	if err != nil {
		return 0, 0, err
	}
	flags, p, err = uvarint(p)
	if err != nil {
		return 0, 0, err
	}
	if len(p) != 0 {
		return 0, 0, fmt.Errorf("%d trailing hello bytes: %w", len(p), errMalformed)
	}
	return node, flags, nil
}

// parseHeartbeat decodes a heartbeat payload.
func parseHeartbeat(p []byte) (node, localStep int, err error) {
	node, p, err = uvarint(p)
	if err != nil {
		return 0, 0, err
	}
	localStep, p, err = uvarint(p)
	if err != nil {
		return 0, 0, err
	}
	if len(p) != 0 {
		return 0, 0, fmt.Errorf("%d trailing heartbeat bytes: %w", len(p), errMalformed)
	}
	return node, localStep, nil
}

// batchDecoder decodes batch payloads, reusing scratch buffers across
// frames. The Measurements it yields own freshly-allocated Values slices
// (the store retains them), but the container slice is reused.
type batchDecoder struct {
	raw  []byte
	recs []Measurement
	// rawBytes is the last payload's uncompressed size (flags byte plus
	// decompressed body) — the numerator of the ingest compression ratio.
	rawBytes int
}

// decode parses one batch payload into (localStep, records). The returned
// slice is valid until the next call.
func (d *batchDecoder) decode(p []byte) (localStep int, recs []Measurement, err error) {
	if len(p) < 1 {
		return 0, nil, fmt.Errorf("empty batch payload: %w", errMalformed)
	}
	flags := p[0]
	body := p[1:]
	if flags&batchFlagCompressed != 0 {
		var rawLen int
		rawLen, body, err = uvarint(body)
		if err != nil {
			return 0, nil, err
		}
		if rawLen > maxFrameBytes {
			return 0, nil, fmt.Errorf("compressed batch expands to %d bytes: %w", rawLen, errMalformed)
		}
		if cap(d.raw) < rawLen {
			d.raw = make([]byte, rawLen)
		}
		d.raw = d.raw[:rawLen]
		fr := flate.NewReader(bytes.NewReader(body))
		if _, err := io.ReadFull(fr, d.raw); err != nil {
			return 0, nil, fmt.Errorf("decompress batch: %w", errMalformed)
		}
		_ = fr.Close()
		body = d.raw
	}
	d.rawBytes = len(body) + 1
	localStep, body, err = uvarint(body)
	if err != nil {
		return 0, nil, err
	}
	count, body, err := uvarint(body)
	if err != nil {
		return 0, nil, err
	}
	d.recs = d.recs[:0]
	for i := 0; i < count; i++ {
		var m Measurement
		m.Node, body, err = uvarint(body)
		if err != nil {
			return 0, nil, err
		}
		m.Step, body, err = uvarint(body)
		if err != nil {
			return 0, nil, err
		}
		var dims int
		dims, body, err = uvarint(body)
		if err != nil {
			return 0, nil, err
		}
		// Compare against len/8 rather than 8*dims: a hostile dims near
		// MaxInt would overflow the multiplication past this guard and
		// panic the collector in make below.
		if dims > len(body)/8 {
			return 0, nil, fmt.Errorf("record truncated: %w", errMalformed)
		}
		m.Values = make([]float64, dims)
		for j := range m.Values {
			m.Values[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*j:]))
		}
		body = body[8*dims:]
		d.recs = append(d.recs, m)
	}
	if len(body) != 0 {
		return 0, nil, fmt.Errorf("%d trailing batch bytes: %w", len(body), errMalformed)
	}
	return localStep, d.recs, nil
}
