package orcf

import (
	"errors"
	"math"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	t.Parallel()
	sys, err := New(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Ready() {
		t.Fatal("fresh system should not be ready")
	}
	if sys.Steps() != 0 {
		t.Fatal("fresh system has steps")
	}
}

func TestOptionValidation(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		opt  Option
	}{
		{"bad K", WithClusters(0)},
		{"bad AR", WithAR(0)},
		{"bad M", WithSimilarityLookback(0)},
		{"bad MPrime", WithMembershipLookback(-1)},
		{"nil policy", WithPolicyFactory(nil)},
		{"nil builder", WithModelBuilder(nil)},
		{"bad schedule", WithTrainingSchedule(0, 5)},
		{"bad fit window", WithFitWindow(-1)},
		{"unknown zoo family", WithModelZoo("ses", "no-such-model")},
		{"empty zoo", WithModelZoo()},
		{"bad selection metric", WithSelection(SelectionConfig{Metric: "mape"})},
		{"negative selection margin", WithSelection(SelectionConfig{Margin: -1})},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if _, err := New(10, 1, tt.opt); !errors.Is(err, ErrBadOption) {
				t.Fatalf("want ErrBadOption, got %v", err)
			}
		})
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	t.Parallel()
	ds, err := GenerateTrace(GeneratorConfig{
		Name: "api", Nodes: 20, Steps: 300, Profiles: 3, Seed: 1,
		DiurnalPeriod: 96,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(20, 2,
		WithBudget(0.3),
		WithClusters(3),
		WithSampleAndHold(),
		WithTrainingSchedule(60, 100),
		WithMembershipLookback(5),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Evaluate(ds, EvalConfig{
		Horizons:          []int{1, 5},
		ForecastEvery:     4,
		ScoreIntermediate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 300 {
		t.Fatalf("steps = %d", res.Steps)
	}
	if math.Abs(res.MeanFrequency-0.3) > 0.05 {
		t.Fatalf("frequency %v, want ≈ 0.3", res.MeanFrequency)
	}
	for r := range res.PerResource {
		if v := res.RMSEAt(r, 1); !(v > 0 && v < 0.5) {
			t.Fatalf("resource %d h=1 RMSE %v implausible", r, v)
		}
	}
}

func TestPresetAccessors(t *testing.T) {
	t.Parallel()
	for _, p := range []TracePreset{AlibabaLike(), BitbrainsLike(), GoogleLike(), SensorLike()} {
		ds, err := p.Generate(5, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Nodes() != 5 || ds.Steps() != 10 {
			t.Fatalf("%s: %d×%d", p.Name, ds.Nodes(), ds.Steps())
		}
	}
}

func TestGridAccessors(t *testing.T) {
	t.Parallel()
	g := DefaultARIMAGrid()
	if g.MaxP < 1 {
		t.Fatal("default grid empty")
	}
	pg := PaperARIMAGrid(288)
	if pg.MaxP != 5 || pg.MaxD != 2 || pg.MaxQ != 5 || pg.Season != 288 {
		t.Fatalf("paper grid %+v", pg)
	}
}

func TestForecastViaPublicAPI(t *testing.T) {
	t.Parallel()
	sys, err := New(6, 1,
		WithAlwaysTransmit(),
		WithClusters(2),
		WithTrainingSchedule(10, 50),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		x := make([][]float64, 6)
		for n := range x {
			v := 0.2
			if n >= 3 {
				v = 0.8
			}
			x[n] = []float64{v}
		}
		if _, err := sys.Step(x); err != nil {
			t.Fatal(err)
		}
	}
	if !sys.Ready() {
		t.Fatal("system should be ready")
	}
	f, err := sys.Forecast(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f[2][0][0]-0.2) > 0.01 || math.Abs(f[2][5][0]-0.8) > 0.01 {
		t.Fatalf("forecasts %v / %v", f[2][0][0], f[2][5][0])
	}
	if sys.MeanFrequency() != 1 {
		t.Fatalf("frequency %v", sys.MeanFrequency())
	}
	if len(sys.CentroidSeries(0, 0, 0)) != 12 {
		t.Fatal("centroid series length wrong")
	}
	if len(sys.Stored()) != 6 {
		t.Fatal("stored length wrong")
	}
	if sys.Frequency(0) != 1 {
		t.Fatal("node frequency wrong")
	}
}

func TestModelZooPublicAPI(t *testing.T) {
	t.Parallel()
	fams := ModelFamilies()
	if len(fams) < 10 {
		t.Fatalf("only %d registered families: %v", len(fams), fams)
	}
	sys, err := New(6, 1,
		WithAlwaysTransmit(),
		WithClusters(2),
		WithModelZoo("historical-mean", "sample-and-hold"),
		WithSelection(SelectionConfig{Window: 6, Streak: 2}),
		WithTrainingSchedule(8, 100),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Flat then ramping signal: sample-and-hold should dethrone the
	// historical mean once the ramp sustains.
	for i := 0; i < 70; i++ {
		x := make([][]float64, 6)
		for n := range x {
			v := 0.2 + 0.05*float64(n%2)
			if i > 20 {
				v += 0.005 * float64(i-20)
			}
			x[n] = []float64{math.Min(1, v)}
		}
		if _, err := sys.Step(x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Forecast(5); err != nil {
		t.Fatal(err)
	}
	info := sys.ModelSelection(0)
	if info == nil {
		t.Fatal("zoo system reports no selection state")
	}
	if info.SwitchTotal == 0 {
		t.Fatal("regime change never switched a champion")
	}
	for _, row := range info.Cells {
		for _, cell := range row {
			if cell.Switches > 0 && cell.Champion != "sample-and-hold" {
				t.Fatalf("champion %q after sustained ramp", cell.Champion)
			}
		}
	}
}

func TestSmoothingOptions(t *testing.T) {
	t.Parallel()
	// Invalid parameters surface at option time, not at first fit.
	if _, err := New(4, 1, WithSES(2)); err == nil {
		t.Fatal("invalid SES alpha should fail")
	}
	if _, err := New(4, 1, WithHolt(2, 0, 0)); err == nil {
		t.Fatal("invalid Holt alpha should fail")
	}
	if _, err := New(4, 1, WithHoltWinters(1)); err == nil {
		t.Fatal("invalid Holt-Winters period should fail")
	}
	// Valid smoothing models run end to end.
	sys, err := New(6, 1,
		WithAlwaysTransmit(),
		WithClusters(2),
		WithHolt(0, 0, 0),
		WithTrainingSchedule(10, 50),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		x := make([][]float64, 6)
		for n := range x {
			v := 0.2 + 0.005*float64(i)
			if n >= 3 {
				v = 0.8 - 0.005*float64(i)
			}
			x[n] = []float64{v}
		}
		if _, err := sys.Step(x); err != nil {
			t.Fatal(err)
		}
	}
	f, err := sys.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	// Holt extrapolates the opposing trends.
	if !(f[4][0][0] > f[0][0][0]) || !(f[4][5][0] < f[0][5][0]) {
		t.Fatalf("trend extrapolation wrong: %v vs %v", f[0][0][0], f[4][0][0])
	}
}
