package kmeans

import (
	"errors"
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xdeadbeef)) }

func TestRunSeparatesObviousClusters(t *testing.T) {
	t.Parallel()
	// Two tight groups far apart on the real line.
	points := [][]float64{
		{0.01}, {0.02}, {0.03}, {0.0},
		{0.99}, {0.98}, {1.0}, {0.97},
	}
	res, err := Run(points, Config{K: 2}, testRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	low := res.Assignments[0]
	for i := 0; i < 4; i++ {
		if res.Assignments[i] != low {
			t.Fatalf("low group split: %v", res.Assignments)
		}
	}
	high := res.Assignments[4]
	if high == low {
		t.Fatalf("groups merged: %v", res.Assignments)
	}
	for i := 4; i < 8; i++ {
		if res.Assignments[i] != high {
			t.Fatalf("high group split: %v", res.Assignments)
		}
	}
	// Centroids near 0.015 and 0.985.
	lo, hi := res.Centroids[low][0], res.Centroids[high][0]
	if math.Abs(lo-0.015) > 0.01 || math.Abs(hi-0.985) > 0.01 {
		t.Fatalf("centroids %v, %v", lo, hi)
	}
}

func TestRunVectorPoints(t *testing.T) {
	t.Parallel()
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{5, 5}, {5.1, 5}, {5, 5.1},
		{-5, 5}, {-5.1, 5}, {-5, 5.1},
	}
	res, err := Run(points, Config{K: 3}, testRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids, want 3", len(res.Centroids))
	}
	// Each group of three shares a label and the labels are distinct.
	labels := map[int]bool{}
	for g := 0; g < 3; g++ {
		l := res.Assignments[3*g]
		for i := 3 * g; i < 3*g+3; i++ {
			if res.Assignments[i] != l {
				t.Fatalf("group %d split: %v", g, res.Assignments)
			}
		}
		labels[l] = true
	}
	if len(labels) != 3 {
		t.Fatalf("clusters merged: %v", res.Assignments)
	}
}

func TestRunKGreaterOrEqualN(t *testing.T) {
	t.Parallel()
	points := [][]float64{{1}, {2}, {3}}
	res, err := Run(points, Config{K: 5}, testRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %v, want 0", res.Inertia)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d, want 3 (capped at n)", len(res.Centroids))
	}
	for i := range points {
		if res.Assignments[i] != i {
			t.Fatalf("assignment %v, want identity", res.Assignments)
		}
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name   string
		points [][]float64
		cfg    Config
	}{
		{"zero K", [][]float64{{1}}, Config{K: 0}},
		{"no points", nil, Config{K: 2}},
		{"ragged", [][]float64{{1}, {1, 2}}, Config{K: 1}},
		{"zero dim", [][]float64{{}}, Config{K: 1}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if _, err := Run(tt.points, tt.cfg, testRNG(4)); !errors.Is(err, ErrBadInput) {
				t.Fatalf("want ErrBadInput, got %v", err)
			}
		})
	}
}

func TestRunDeterministicWithSameSeed(t *testing.T) {
	t.Parallel()
	rng := testRNG(9)
	points := make([][]float64, 200)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64()}
	}
	r1, err := Run(points, Config{K: 4}, testRNG(100))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(points, Config{K: 4}, testRNG(100))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assignments {
		if r1.Assignments[i] != r2.Assignments[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
	if r1.Inertia != r2.Inertia {
		t.Fatal("same seed produced different inertia")
	}
}

func TestRunAllIdenticalPoints(t *testing.T) {
	t.Parallel()
	points := make([][]float64, 10)
	for i := range points {
		points[i] = []float64{0.5}
	}
	res, err := Run(points, Config{K: 3}, testRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia = %v, want 0", res.Inertia)
	}
}

func TestNoEmptyClusters(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := testRNG(seed)
		n := 10 + int(seed%40)
		k := 2 + int(seed%5)
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64()}
		}
		res, err := Run(points, Config{K: k}, rng)
		if err != nil {
			return false
		}
		counts := make([]int, len(res.Centroids))
		for _, a := range res.Assignments {
			counts[a]++
		}
		for _, c := range counts {
			if c == 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: mrand.New(mrand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: inertia equals the sum of squared distances to the assigned
// centroid, and every point's assigned centroid is the nearest one.
func TestAssignmentsAreNearest(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := testRNG(seed + 1000)
		n := 20 + int(seed%30)
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64(), rng.Float64()}
		}
		res, err := Run(points, Config{K: 3}, rng)
		if err != nil {
			return false
		}
		var inertia float64
		for i, p := range points {
			best := Nearest(p, res.Centroids)
			if SqDist(p, res.Centroids[best]) < SqDist(p, res.Centroids[res.Assignments[i]])-1e-12 {
				return false
			}
			inertia += SqDist(p, res.Centroids[res.Assignments[i]])
		}
		return math.Abs(inertia-res.Inertia) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 40, Rand: mrand.New(mrand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	t.Parallel()
	rng := testRNG(77)
	points := make([][]float64, 300)
	for i := range points {
		points[i] = []float64{rng.NormFloat64()}
	}
	var prev = math.Inf(1)
	for _, k := range []int{1, 2, 4, 8, 16} {
		res, err := Run(points, Config{K: k}, testRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		// Inertia should broadly decrease as K grows (allow tiny slack for
		// local optima of Lloyd's algorithm).
		if res.Inertia > prev*1.05 {
			t.Fatalf("inertia grew sharply at K=%d: %v > %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestNearestAndSqDist(t *testing.T) {
	t.Parallel()
	cents := [][]float64{{0}, {1}, {2}}
	if got := Nearest([]float64{1.4}, cents); got != 1 {
		t.Fatalf("Nearest = %d, want 1", got)
	}
	if got := SqDist([]float64{0, 3}, []float64{4, 0}); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
}
