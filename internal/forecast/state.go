package forecast

import (
	"fmt"
	"time"

	"orcf/internal/parallel"
)

// EnsembleState is the serializable state of an Ensemble. It deliberately
// carries no model weights: every Model's Fit is a pure function of the
// series it is given (the LSTM rebuilds its network from its seed on each
// Fit), so the models are reconstructed bit-identically on restore by
// refitting on the history up to the last (re)training step and replaying
// the per-step Updates that followed it. That keeps the format independent
// of which model family is configured — persisting an ARIMA ensemble and an
// LSTM ensemble takes the same bytes-per-step.
type EnsembleState struct {
	// T is the number of observed steps.
	T int
	// Ready records whether initial training had completed.
	Ready bool
	// LastRefit is the step index of the most recent (re)training.
	LastRefit int
	// Series is the accumulated centroid history, indexed [cluster][dim][t].
	Series [][][]float64
	// TrainTime and TrainRuns carry the cumulative training accounting.
	TrainTime time.Duration
	// TrainRuns is the number of completed (re)training rounds.
	TrainRuns int
}

// ExportState deep-copies the ensemble's mutable state; the result shares no
// memory with the live ensemble.
func (e *Ensemble) ExportState() *EnsembleState {
	st := &EnsembleState{
		T:         e.t,
		Ready:     e.ready,
		LastRefit: e.lastrefits,
		TrainTime: e.trainTime,
		TrainRuns: e.trainRuns,
	}
	st.Series = make([][][]float64, len(e.series))
	for j, byDim := range e.series {
		st.Series[j] = make([][]float64, len(byDim))
		for d, series := range byDim {
			st.Series[j][d] = append([]float64(nil), series...)
		}
	}
	return st
}

// RestoreState replaces a freshly constructed ensemble's state with an
// exported one and reconstructs every model deterministically: each model is
// refit on its series truncated to the last training step (honoring
// FitWindow exactly as the live refit did), then fed the observations that
// arrived after it via Update. The ensemble must not have observed any step
// yet. Fits run on the configured worker pool; the refit does not count
// toward the restored TrainTime/TrainRuns accounting.
func (e *Ensemble) RestoreState(st *EnsembleState) error {
	if e.t != 0 {
		return fmt.Errorf("forecast: restore into ensemble with %d steps: %w", e.t, ErrBadInput)
	}
	if st == nil {
		return fmt.Errorf("forecast: nil ensemble state: %w", ErrBadInput)
	}
	if st.T < 0 || st.LastRefit < 0 || st.LastRefit > st.T || st.TrainRuns < 0 {
		return fmt.Errorf("forecast: state counters T=%d lastRefit=%d runs=%d: %w",
			st.T, st.LastRefit, st.TrainRuns, ErrBadInput)
	}
	if st.Ready && st.LastRefit == 0 {
		return fmt.Errorf("forecast: ready state without a training step: %w", ErrBadInput)
	}
	if len(st.Series) != e.cfg.Clusters {
		return fmt.Errorf("forecast: %d series, want %d clusters: %w",
			len(st.Series), e.cfg.Clusters, ErrBadInput)
	}
	for j, byDim := range st.Series {
		if len(byDim) != e.cfg.Dims {
			return fmt.Errorf("forecast: cluster %d has %d dims, want %d: %w",
				j, len(byDim), e.cfg.Dims, ErrBadInput)
		}
		for d, series := range byDim {
			if len(series) != st.T {
				return fmt.Errorf("forecast: series (%d,%d) has %d values, want %d: %w",
					j, d, len(series), st.T, ErrBadInput)
			}
		}
	}

	for j, byDim := range st.Series {
		for d, series := range byDim {
			e.series[j][d] = append([]float64(nil), series...)
		}
	}
	e.t = st.T
	e.ready = st.Ready
	e.lastrefits = st.LastRefit
	e.trainTime = st.TrainTime
	e.trainRuns = st.TrainRuns

	if !st.Ready {
		return nil
	}
	dims := e.cfg.Dims
	return parallel.ForEach(e.cfg.Workers, e.cfg.Clusters*dims, func(i int) error {
		j, d := i/dims, i%dims
		s := e.series[j][d][:st.LastRefit]
		if e.cfg.FitWindow > 0 && len(s) > e.cfg.FitWindow {
			s = s[len(s)-e.cfg.FitWindow:]
		}
		if err := e.models[j][d].Fit(s); err != nil {
			return fmt.Errorf("forecast: restoring cluster %d dim %d: %w", j, d, err)
		}
		for _, v := range e.series[j][d][st.LastRefit:] {
			e.models[j][d].Update(v)
		}
		return nil
	})
}
