package trace

import (
	"math"
	"testing"
)

// TestQuantizationProperty: every generated value is a multiple of the
// quantum (within float tolerance) when quantization is on, and flat
// stretches exist (the adaptive-transmission banking signal).
func TestQuantizationProperty(t *testing.T) {
	t.Parallel()
	d, err := Generate(GeneratorConfig{Nodes: 30, Steps: 300, Quantum: 0.01, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	flat := 0
	total := 0
	for step := 0; step < d.Steps(); step++ {
		for i := 0; i < d.Nodes(); i++ {
			for _, v := range d.At(step, i) {
				q := v / 0.01
				if math.Abs(q-math.Round(q)) > 1e-9 {
					t.Fatalf("value %v not on 0.01 grid", v)
				}
			}
			if step > 0 {
				total++
				if d.At(step, i)[0] == d.At(step-1, i)[0] {
					flat++
				}
			}
		}
	}
	if frac := float64(flat) / float64(total); frac < 0.2 {
		t.Fatalf("only %.2f of consecutive samples are exactly flat; quantization "+
			"should create flat stretches", frac)
	}
}

func TestQuantizationDisabled(t *testing.T) {
	t.Parallel()
	d, err := Generate(GeneratorConfig{Nodes: 10, Steps: 100, Quantum: -1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	offGrid := 0
	for step := 0; step < d.Steps(); step++ {
		for i := 0; i < d.Nodes(); i++ {
			v := d.At(step, i)[0]
			q := v / 0.01
			if math.Abs(q-math.Round(q)) > 1e-9 {
				offGrid++
			}
		}
	}
	if offGrid == 0 {
		t.Fatal("with quantization disabled values should not sit on the grid")
	}
}

// TestIdleMachinesAreConstant: with idle machines forced on, a substantial
// fraction of machines emit (almost) constant series — the singular-
// covariance feature of real traces.
func TestIdleMachinesAreConstant(t *testing.T) {
	t.Parallel()
	d, err := Generate(GeneratorConfig{
		Nodes: 60, Steps: 400, IdleProb: 0.5, TwinProb: -1,
		NodeBurstProb: -1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	constant := 0
	for i := 0; i < d.Nodes(); i++ {
		s := d.NodeSeries(i, 0)
		same := true
		for _, v := range s[1:] {
			if v != s[0] {
				same = false
				break
			}
		}
		if same {
			constant++
		}
	}
	// ~50% idle, each exactly constant without bursts.
	if constant < d.Nodes()/4 {
		t.Fatalf("only %d/%d machines constant with IdleProb=0.5", constant, d.Nodes())
	}
}

// TestTwinMachinesMirror: twins track their target almost exactly.
func TestTwinMachinesMirror(t *testing.T) {
	t.Parallel()
	d, err := Generate(GeneratorConfig{
		Nodes: 40, Steps: 300, TwinProb: 0.9, IdleProb: -1, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With TwinProb 0.9 almost every node i>0 mirrors an earlier node.
	// Detect pairs by near-perfect agreement.
	pairs := 0
	for i := 1; i < d.Nodes(); i++ {
		si := d.NodeSeries(i, 0)
		for j := 0; j < i; j++ {
			sj := d.NodeSeries(j, 0)
			agree := 0
			for k := range si {
				if math.Abs(si[k]-sj[k]) <= 0.0100001 {
					agree++
				}
			}
			if float64(agree) >= 0.95*float64(len(si)) {
				pairs++
				break
			}
		}
	}
	if pairs < d.Nodes()/2 {
		t.Fatalf("only %d near-duplicate machines found with TwinProb=0.9", pairs)
	}
}

// TestDiurnalAmpControlsCycle: a strong DiurnalAmp yields visibly periodic
// mean utilization; a disabled one does not.
func TestDiurnalAmpControlsCycle(t *testing.T) {
	t.Parallel()
	period := 96
	strong, err := Generate(GeneratorConfig{
		Nodes: 40, Steps: 4 * period, DiurnalPeriod: period, DiurnalAmp: 0.35,
		Profiles: 2, BurstProb: -1, NodeBurstProb: -1, IdleProb: -1,
		TwinProb: -1, ChurnProb: -1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Generate(GeneratorConfig{
		Nodes: 40, Steps: 4 * period, DiurnalPeriod: period, DiurnalAmp: -1,
		Profiles: 2, BurstProb: -1, NodeBurstProb: -1, IdleProb: -1,
		TwinProb: -1, ChurnProb: -1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if amp(meanSeries(strong)) < 4*amp(meanSeries(flat)) {
		t.Fatalf("diurnal amplitude knob ineffective: strong %v vs flat %v",
			amp(meanSeries(strong)), amp(meanSeries(flat)))
	}
}

func meanSeries(d *Dataset) []float64 {
	out := make([]float64, d.Steps())
	for t := 0; t < d.Steps(); t++ {
		var s float64
		for i := 0; i < d.Nodes(); i++ {
			s += d.At(t, i)[0]
		}
		out[t] = s / float64(d.Nodes())
	}
	return out
}

func amp(s []float64) float64 {
	lo, hi := s[0], s[0]
	for _, v := range s {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}
