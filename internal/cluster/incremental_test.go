package cluster

// Differential test plane for the incremental eq. (10) refit path: a
// test-local array-of-structs oracle re-implements the historical tracker
// (prepend-list history, O(N·M) core-set scan, per-call scratch) plus the
// same warm/fallback decision procedure, and the property tests drive both
// through randomized workloads × membership churn × every Similarity mode,
// requiring bit-identical steps and RNG streams throughout.

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"orcf/internal/hungarian"
	"orcf/internal/kmeans"
)

// oracleTracker is the slow reference. Its full-refit path is the historical
// implementation verbatim; its warm path mirrors the documented decision
// procedure using kmeans.Nearest per point.
type oracleTracker struct {
	cfg       Config
	rng       *rand.Rand
	t         int
	dim       int
	n         int
	hist      [][]int
	prevCents [][]float64
	series    [][][]float64
}

func newOracle(cfg Config, rng *rand.Rand) *oracleTracker {
	return &oracleTracker{cfg: cfg.withDefaults(), rng: rng}
}

func (o *oracleTracker) histAt(ago, slot int) int {
	h := o.hist[ago]
	if slot >= len(h) {
		return -1
	}
	return h[slot]
}

func (o *oracleTracker) forgetSlot(slot int) {
	for m := range o.hist {
		if slot < len(o.hist[m]) {
			o.hist[m][slot] = -1
		}
	}
}

func (o *oracleTracker) matchToHistory(raw []int) []int {
	k := o.cfg.K
	lookback := min(o.cfg.M, o.t)
	core := make([]int, len(raw))
	for i := range core {
		j := o.histAt(0, i)
		for m := 1; m < lookback && j >= 0; m++ {
			if o.histAt(m, i) != j {
				j = -1
			}
		}
		core[i] = j
	}
	inter := make([][]float64, k)
	for kk := range inter {
		inter[kk] = make([]float64, k)
	}
	rawSize := make([]float64, k)
	coreSize := make([]float64, k)
	for i, kk := range raw {
		if kk < 0 {
			continue
		}
		rawSize[kk]++
		if j := core[i]; j >= 0 {
			coreSize[j]++
			inter[kk][j]++
		}
	}
	w := inter
	if o.cfg.Similarity == SimilarityJaccard {
		w = make([][]float64, k)
		for kk := range w {
			w[kk] = make([]float64, k)
			for j := range w[kk] {
				union := rawSize[kk] + coreSize[j] - inter[kk][j]
				if union > 0 {
					w[kk][j] = inter[kk][j] / union
				}
			}
		}
	}
	mapping, _, err := hungarian.MaxWeightMatch(w)
	if err != nil {
		panic(err)
	}
	return mapping
}

func (o *oracleTracker) stabilize(raw []int) []int {
	if o.t == 0 || o.cfg.DisableMatching {
		return raw
	}
	mapping := o.matchToHistory(raw)
	stable := make([]int, len(raw))
	for i, k := range raw {
		if k < 0 {
			stable[i] = -1
			continue
		}
		stable[i] = mapping[k]
	}
	return stable
}

// update returns the step and whether it was warm-started.
func (o *oracleTracker) update(points [][]float64, present []bool) (*Step, bool) {
	var packed [][]float64
	var packIdx []int
	for i, p := range points {
		if present == nil || present[i] {
			if o.dim == 0 {
				o.dim = len(p)
			}
			packed = append(packed, p)
			packIdx = append(packIdx, i)
		}
	}
	o.n = len(points)
	pn := len(packed)

	scatter := func(assign []int) []int {
		raw := make([]int, len(points))
		for i := range raw {
			raw[i] = -1
		}
		for pi, slot := range packIdx {
			raw[slot] = assign[pi]
		}
		return raw
	}

	var stable []int
	warm := false
	if o.cfg.Incremental && o.t > 0 && o.cfg.IncrementalChurn >= 0 &&
		pn > o.cfg.K && len(o.prevCents) == o.cfg.K {
		same := true
		for i := range points {
			p := present == nil || present[i]
			if p != (o.histAt(0, i) >= 0) {
				same = false
				break
			}
		}
		if same {
			warmAssign := make([]int, pn)
			counts := make([]int, o.cfg.K)
			for pi, p := range packed {
				warmAssign[pi] = kmeans.Nearest(p, o.prevCents)
				counts[warmAssign[pi]]++
			}
			empty := false
			for _, c := range counts {
				if c == 0 {
					empty = true
				}
			}
			if !empty {
				cand := o.stabilize(scatter(warmAssign))
				thr := o.cfg.IncrementalChurn
				if thr == 0 {
					thr = DefaultIncrementalChurn
				}
				changed := 0
				for _, slot := range packIdx {
					if cand[slot] != o.histAt(0, slot) {
						changed++
					}
				}
				if float64(changed) <= thr*float64(pn) {
					stable, warm = cand, true
				}
			}
		}
	}
	if !warm {
		res, err := kmeans.Run(packed, kmeans.Config{
			K:             o.cfg.K,
			MaxIterations: o.cfg.KMeansIterations,
		}, o.rng)
		if err != nil {
			panic(err)
		}
		stable = o.stabilize(scatter(res.Assignments))
	}

	cents := CentroidsFor(stable, o.cfg.K, points)
	o.t++
	cp := make([]int, len(stable))
	copy(cp, stable)
	o.hist = append([][]int{cp}, o.hist...)
	if len(o.hist) > o.cfg.HistoryDepth {
		o.hist = o.hist[:o.cfg.HistoryDepth]
	}
	if o.series == nil {
		o.series = make([][][]float64, o.cfg.K)
		for j := range o.series {
			o.series[j] = make([][]float64, o.dim)
		}
	}
	o.prevCents = make([][]float64, o.cfg.K)
	for j := 0; j < o.cfg.K; j++ {
		o.prevCents[j] = append([]float64(nil), cents[j]...)
		for d := 0; d < o.dim; d++ {
			o.series[j][d] = append(o.series[j][d], cents[j][d])
		}
	}
	return &Step{T: o.t, Assignments: stable, Centroids: cents}, warm
}

// churnSim generates a randomized elastic-fleet workload: drifting grouped
// measurements over a slot array with joins, leaves, and rejoins.
type churnSim struct {
	rng     *rand.Rand
	k       int
	dim     int
	present []bool
	step    int
}

func newChurnSim(rng *rand.Rand, k, dim, slots int) *churnSim {
	sim := &churnSim{rng: rng, k: k, dim: dim, present: make([]bool, slots)}
	for i := range sim.present {
		sim.present[i] = true
	}
	return sim
}

// next returns the points and mask for one step, mutating membership with
// probability churn. forget reports slots whose history must be erased
// (leavers and recycled rejoiners), mirroring core.System's calls.
func (sim *churnSim) next(churn float64) (points [][]float64, present []bool, forget []int) {
	sim.step++
	if sim.rng.Float64() < churn {
		switch sim.rng.IntN(3) {
		case 0: // leave
			if n := sim.presentCount(); n > sim.k+2 {
				idx := sim.nthPresent(sim.rng.IntN(n))
				sim.present[idx] = false
				forget = append(forget, idx)
			}
		case 1: // rejoin an absent slot (recycled: history erased)
			for i, p := range sim.present {
				if !p {
					sim.present[i] = true
					forget = append(forget, i)
					break
				}
			}
		case 2: // grow: a brand-new slot joins
			if len(sim.present) < 64 {
				sim.present = append(sim.present, true)
			}
		}
	}
	points = make([][]float64, len(sim.present))
	present = append([]bool(nil), sim.present...)
	for i, p := range sim.present {
		if !p {
			continue // absent points may be nil
		}
		g := i % sim.k
		level := float64(g)*10 + 2*math.Sin(float64(sim.step)/7+float64(g))
		vec := make([]float64, sim.dim)
		for d := range vec {
			vec[d] = level + sim.rng.NormFloat64()*0.5
		}
		points[i] = vec
	}
	return points, present, forget
}

func (sim *churnSim) presentCount() int {
	n := 0
	for _, p := range sim.present {
		if p {
			n++
		}
	}
	return n
}

func (sim *churnSim) nthPresent(n int) int {
	for i, p := range sim.present {
		if p {
			if n == 0 {
				return i
			}
			n--
		}
	}
	return -1
}

func sameStep(t *testing.T, tag string, got, want *Step) {
	t.Helper()
	if got.T != want.T {
		t.Fatalf("%s: T=%d, want %d", tag, got.T, want.T)
	}
	if len(got.Assignments) != len(want.Assignments) {
		t.Fatalf("%s: %d assignments, want %d", tag, len(got.Assignments), len(want.Assignments))
	}
	for i := range want.Assignments {
		if got.Assignments[i] != want.Assignments[i] {
			t.Fatalf("%s: assign[%d]=%d, want %d", tag, i, got.Assignments[i], want.Assignments[i])
		}
	}
	if len(got.Centroids) != len(want.Centroids) {
		t.Fatalf("%s: %d centroids, want %d", tag, len(got.Centroids), len(want.Centroids))
	}
	for j := range want.Centroids {
		for d := range want.Centroids[j] {
			g, w := got.Centroids[j][d], want.Centroids[j][d]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s: centroid[%d][%d]=%v, want %v (bitwise)", tag, j, d, g, w)
			}
		}
	}
}

// trackerConfigs enumerates the similarity modes (and a matching-disabled
// ablation) every differential property must hold under.
func trackerConfigs(base Config) []Config {
	prop, jacc, nomatch := base, base, base
	prop.Similarity = SimilarityProposed
	jacc.Similarity = SimilarityJaccard
	nomatch.DisableMatching = true
	return []Config{prop, jacc, nomatch}
}

// TestIncrementalMatchesOracleExactly is the tentpole differential property:
// the incremental tracker must be bit-identical to the array-of-structs
// oracle — same assignments, centroids, warm/full decisions, and RNG draw
// sequence — over randomized workloads with join/evict/rejoin churn, in
// every similarity mode, at several churn thresholds including the default.
func TestIncrementalMatchesOracleExactly(t *testing.T) {
	t.Parallel()
	for _, thr := range []float64{0, 0.05, 0.9} {
		for ci, cfg := range trackerConfigs(Config{K: 3, M: 2, Incremental: true, IncrementalChurn: thr}) {
			for seed := uint64(1); seed <= 4; seed++ {
				tag := fmt.Sprintf("thr=%v cfg=%d seed=%d", thr, ci, seed)
				tr, err := NewTracker(cfg, testRNG(seed))
				if err != nil {
					t.Fatal(err)
				}
				or := newOracle(cfg, testRNG(seed))
				sim := newChurnSim(rand.New(rand.NewPCG(seed, 99)), cfg.K, 2, 24)
				warmSeen := 0
				for step := 0; step < 60; step++ {
					points, present, forget := sim.next(0.3)
					for _, slot := range forget {
						tr.ForgetSlot(slot)
						or.forgetSlot(slot)
					}
					got, err := tr.UpdateMasked(points, present)
					if err != nil {
						t.Fatalf("%s step %d: %v", tag, step, err)
					}
					want, warm := or.update(points, present)
					sameStep(t, fmt.Sprintf("%s step %d", tag, step), got, want)
					w, f := tr.RefitStats()
					if warm {
						warmSeen++
					}
					if w != warmSeen || w+f != tr.Steps() {
						t.Fatalf("%s step %d: RefitStats=(%d,%d), oracle warm=%d steps=%d",
							tag, step, w, f, warmSeen, tr.Steps())
					}
				}
				if a, b := tr.rng.Uint64(), or.rng.Uint64(); a != b {
					t.Fatalf("%s: RNG streams diverged", tag)
				}
				if warmSeen == 0 && thr == 0.9 {
					t.Fatalf("%s: high threshold never warm-started; property vacuous", tag)
				}
			}
		}
	}
}

// TestForcedFallbackMatchesPlainTracker pins the differential-test boundary:
// with IncrementalChurn < 0 every step must fall back to a full refit and the
// tracker is bit-identical — including the RNG stream — to one with
// Incremental off.
func TestForcedFallbackMatchesPlainTracker(t *testing.T) {
	t.Parallel()
	for ci, cfg := range trackerConfigs(Config{K: 3, M: 2}) {
		inc := cfg
		inc.Incremental = true
		inc.IncrementalChurn = -1
		trInc, err := NewTracker(inc, testRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		trRef, err := NewTracker(cfg, testRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		sim := newChurnSim(rand.New(rand.NewPCG(7, 7)), cfg.K, 1, 20)
		for step := 0; step < 40; step++ {
			points, present, forget := sim.next(0.25)
			for _, slot := range forget {
				trInc.ForgetSlot(slot)
				trRef.ForgetSlot(slot)
			}
			a, err := trInc.UpdateMasked(points, present)
			if err != nil {
				t.Fatalf("cfg %d step %d: %v", ci, step, err)
			}
			b, err := trRef.UpdateMasked(points, present)
			if err != nil {
				t.Fatalf("cfg %d step %d: %v", ci, step, err)
			}
			sameStep(t, fmt.Sprintf("cfg %d step %d", ci, step), a, b)
		}
		if w, f := trInc.RefitStats(); w != 0 || f != trInc.Steps() {
			t.Fatalf("cfg %d: forced fallback RefitStats=(%d,%d), want (0,%d)", ci, w, f, trInc.Steps())
		}
		if trInc.rng.Uint64() != trRef.rng.Uint64() {
			t.Fatalf("cfg %d: RNG streams diverged", ci)
		}
	}
}

// TestStreakCountersMatchHistoryScan pins the incremental core-set counters
// against the direct definition: slot i is in cluster j's eq. (10) core iff
// its assignment was j at all of the last min(M, t) steps.
func TestStreakCountersMatchHistoryScan(t *testing.T) {
	t.Parallel()
	for _, m := range []int{1, 2, 4} {
		cfg := Config{K: 3, M: m}
		tr, err := NewTracker(cfg, testRNG(11))
		if err != nil {
			t.Fatal(err)
		}
		sim := newChurnSim(rand.New(rand.NewPCG(uint64(m), 5)), cfg.K, 1, 18)
		for step := 0; step < 50; step++ {
			points, present, forget := sim.next(0.35)
			for _, slot := range forget {
				tr.ForgetSlot(slot)
			}
			if _, err := tr.UpdateMasked(points, present); err != nil {
				t.Fatalf("M=%d step %d: %v", m, step, err)
			}
			lookback := min(tr.cfg.M, tr.t)
			for i := 0; i < tr.n; i++ {
				want := tr.histAt(0, i)
				for ago := 1; ago < lookback && want >= 0; ago++ {
					if tr.histAt(ago, i) != want {
						want = -1
					}
				}
				got := -1
				if tr.streak[i] >= lookback {
					got = tr.streakVal[i]
				}
				if got != want {
					t.Fatalf("M=%d step %d slot %d: streak core %d, scan core %d", m, step, i, got, want)
				}
			}
		}
	}
}

// TestIncrementalRestoreResumesExactly pins that export/restore preserves the
// warm-start inputs (previous centroids, streak counters): a restored
// incremental tracker must continue bit-identically to the uninterrupted one.
func TestIncrementalRestoreResumesExactly(t *testing.T) {
	t.Parallel()
	cfg := Config{K: 3, M: 2, Incremental: true}
	src := rand.NewPCG(21, 42)
	tr, err := NewTracker(cfg, rand.New(src))
	if err != nil {
		t.Fatal(err)
	}
	sim := newChurnSim(rand.New(rand.NewPCG(3, 33)), cfg.K, 2, 20)

	// Warm the tracker, then snapshot its state and RNG.
	for step := 0; step < 20; step++ {
		points, present, forget := sim.next(0.2)
		for _, slot := range forget {
			tr.ForgetSlot(slot)
		}
		if _, err := tr.UpdateMasked(points, present); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	st := tr.ExportState()
	rngBytes, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	src2 := rand.NewPCG(0, 0)
	if err := src2.UnmarshalBinary(rngBytes); err != nil {
		t.Fatal(err)
	}
	tr2, err := NewTracker(cfg, rand.New(src2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.RestoreState(st); err != nil {
		t.Fatal(err)
	}

	// Drive both trackers through the same tail; they must not diverge.
	for step := 0; step < 20; step++ {
		points, present, forget := sim.next(0.2)
		for _, slot := range forget {
			tr.ForgetSlot(slot)
			tr2.ForgetSlot(slot)
		}
		want, err := tr.UpdateMasked(points, present)
		if err != nil {
			t.Fatalf("tail %d: %v", step, err)
		}
		got, err := tr2.UpdateMasked(points, present)
		if err != nil {
			t.Fatalf("restored tail %d: %v", step, err)
		}
		sameStep(t, fmt.Sprintf("restored tail %d", step), got, want)
	}
	if w, _ := tr.RefitStats(); w == 0 {
		t.Fatal("no warm steps exercised; restore property vacuous")
	}
}

// TestTrackerSteadyStateAllocs pins the scratch hoisting: once warmed up, an
// UpdateMasked step must allocate only its returned Step (plus the small
// K×K matching solve), independent of N.
func TestTrackerSteadyStateAllocs(t *testing.T) {
	cfg := Config{K: 3, M: 2}
	tr, err := NewTracker(cfg, testRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{float64(i%3)*10 + float64(i)*1e-4}
	}
	present := make([]bool, n)
	for i := range present {
		present[i] = true
	}
	for step := 0; step < 5; step++ {
		if _, err := tr.UpdateMasked(points, present); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := tr.UpdateMasked(points, present); err != nil {
			t.Fatal(err)
		}
	})
	// The historical implementation allocated O(N) slices per step (raw,
	// stable, history row, packed rows, centroid matrices). The bound below
	// covers the Step copies and the Hungarian solve only.
	if allocs > 40 {
		t.Fatalf("steady-state UpdateMasked allocates %v objects per step", allocs)
	}
}
