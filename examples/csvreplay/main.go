// CSV replay: run the full pipeline on a real trace export instead of the
// synthetic generators. The expected schema is the codec's
//
//	time,node,cpu,mem
//
// with a dense (time × node) grid — the natural shape of an extraction from
// the Alibaba/Bitbrains/Google datasets the paper evaluates on.
//
// Without arguments the example writes a small demonstration CSV to a
// temporary file first, so it is runnable out of the box:
//
//	go run ./examples/csvreplay            # self-contained demo
//	go run ./examples/csvreplay trace.csv  # your own export
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"orcf"
	"orcf/internal/trace"
)

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = writeDemoCSV()
		fmt.Printf("no input given; wrote demo trace to %s\n", path)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("opening trace: %v", err)
	}
	defer f.Close()
	ds, err := trace.LoadCSV(f, filepath.Base(path))
	if err != nil {
		log.Fatalf("parsing trace: %v", err)
	}
	fmt.Printf("loaded %q: %d nodes × %d steps × %d resources\n",
		ds.Name, ds.Nodes(), ds.Steps(), ds.NumResources())

	warmup := ds.Steps() / 3
	if warmup < 10 {
		log.Fatalf("trace too short: %d steps", ds.Steps())
	}
	sys, err := orcf.New(ds.Nodes(), ds.NumResources(),
		orcf.WithBudget(0.3),
		orcf.WithClusters(3),
		orcf.WithTrainingSchedule(warmup, 288),
		orcf.WithSeed(1),
	)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	res, err := sys.Evaluate(ds, orcf.EvalConfig{
		Horizons:          []int{1, 5},
		ForecastEvery:     5,
		ScoreIntermediate: true,
	})
	if err != nil {
		log.Fatalf("evaluating: %v", err)
	}

	fmt.Printf("transmission frequency: %.3f (budget 0.30)\n", res.MeanFrequency)
	for r := range res.PerResource {
		fmt.Printf("%-4s  staleness RMSE %.4f | intermediate RMSE %.4f | "+
			"forecast RMSE h=1 %.4f, h=5 %.4f\n",
			ds.Resources[r],
			res.RMSEAt(r, 0),
			res.PerResource[r].Intermediate.Value(),
			res.RMSEAt(r, 1),
			res.RMSEAt(r, 5))
	}
}

// writeDemoCSV materializes a small synthetic trace as CSV, exercising the
// same loader a real export would use.
func writeDemoCSV() string {
	ds, err := trace.GoogleLike().Generate(24, 240, 7)
	if err != nil {
		log.Fatalf("generating demo trace: %v", err)
	}
	f, err := os.CreateTemp("", "orcf-demo-*.csv")
	if err != nil {
		log.Fatalf("creating temp file: %v", err)
	}
	defer f.Close()
	if err := trace.SaveCSV(f, ds); err != nil {
		log.Fatalf("writing demo trace: %v", err)
	}
	return f.Name()
}
