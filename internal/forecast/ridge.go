package forecast

import (
	"fmt"
	"math"

	"orcf/internal/mat"
)

// LaggedRidge is a black-box regressor over engineered lag features in the
// spirit of Witt et al.'s ML resource-usage models (PAPERS.md): ridge
// regression of y_t on [1, y_{t-1}…y_{t-p}, rolling-mean_w]. The explicit
// ridge penalty and the rolling-mean feature distinguish it from the plain
// AR model — the penalty keeps coefficients stable on short, near-constant
// centroid series, and the rolling mean supplies a slow component the raw
// lags would need many more parameters to express. Deterministic; no RNG.
type LaggedRidge struct {
	lags   int
	win    int
	lambda float64

	coef   []float64 // intercept, p lag coefficients, rolling-mean coefficient
	tail   []float64 // last max(lags, win) observations, most recent last
	fitted bool
}

var _ Model = (*LaggedRidge)(nil)

// NewLaggedRidge returns a lagged-feature ridge regressor. Zero values select
// lags 8, rolling window 16, and ridge penalty 1e-3.
func NewLaggedRidge(lags, win int, lambda float64) (*LaggedRidge, error) {
	if lags == 0 {
		lags = 8
	}
	if win == 0 {
		win = 16
	}
	if lambda == 0 {
		lambda = 1e-3
	}
	if lags < 1 || win < 1 {
		return nil, fmt.Errorf("forecast: lagged-ridge lags=%d window=%d < 1: %w", lags, win, ErrBadInput)
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("forecast: lagged-ridge penalty %v < 0: %w", lambda, ErrBadInput)
	}
	return &LaggedRidge{lags: lags, win: win, lambda: lambda}, nil
}

// context returns the number of trailing observations a prediction needs.
func (m *LaggedRidge) context() int { return max(m.lags, m.win) }

// features fills f with the regression features for predicting the value
// after hist (most recent last): intercept, p lags, rolling mean of the last
// win values. hist must hold at least context() values.
func (m *LaggedRidge) features(hist []float64, f []float64) {
	f[0] = 1
	n := len(hist)
	for i := 1; i <= m.lags; i++ {
		f[i] = hist[n-i]
	}
	var sum float64
	for _, v := range hist[n-m.win:] {
		sum += v
	}
	f[m.lags+1] = sum / float64(m.win)
}

// Fit implements Model by solving the ridge-regularized normal equations
// (XᵀX + λI)β = Xᵀy.
func (m *LaggedRidge) Fit(series []float64) error {
	ctx := m.context()
	if len(series) < ctx+2 {
		return fmt.Errorf("forecast: lagged-ridge needs ≥ %d observations, got %d: %w",
			ctx+2, len(series), ErrBadInput)
	}
	n := len(series) - ctx
	cols := m.lags + 2
	x := mat.New(n, cols)
	y := make([]float64, n)
	row := make([]float64, cols)
	for t := 0; t < n; t++ {
		m.features(series[:ctx+t], row)
		for c, v := range row {
			x.Set(t, c, v)
		}
		y[t] = series[ctx+t]
	}
	xt := x.T()
	xtx, err := mat.Mul(xt, x)
	if err != nil {
		return fmt.Errorf("forecast: lagged-ridge normal equations: %w", err)
	}
	xtx = mat.RegularizeSPD(xtx, m.lambda)
	xty, err := mat.MulVec(xt, y)
	if err != nil {
		return fmt.Errorf("forecast: lagged-ridge normal equations: %w", err)
	}
	l, err := mat.Cholesky(xtx)
	if err != nil {
		return fmt.Errorf("forecast: lagged-ridge solve: %w", err)
	}
	coef, err := mat.SolveCholesky(l, xty)
	if err != nil {
		return fmt.Errorf("forecast: lagged-ridge solve: %w", err)
	}
	m.coef = coef
	m.tail = append(m.tail[:0], series[len(series)-ctx:]...)
	m.fitted = true
	return nil
}

// Update implements Model.
func (m *LaggedRidge) Update(y float64) {
	if !m.fitted {
		return
	}
	m.tail = append(m.tail, y)
	if ctx := m.context(); len(m.tail) > ctx {
		m.tail = m.tail[len(m.tail)-ctx:]
	}
}

// Forecast implements Model by iterating one-step predictions with forecasts
// substituted for unseen values.
func (m *LaggedRidge) Forecast(h int) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if h < 1 {
		return nil, fmt.Errorf("forecast: horizon %d < 1: %w", h, ErrBadInput)
	}
	hist := append([]float64(nil), m.tail...)
	f := make([]float64, m.lags+2)
	out := make([]float64, h)
	for s := 0; s < h; s++ {
		m.features(hist, f)
		var v float64
		for c, w := range m.coef {
			v += w * f[c]
		}
		out[s] = v
		hist = append(hist, v)
	}
	return out, nil
}

// Name implements Model.
func (m *LaggedRidge) Name() string { return "lagged-ridge" }

// Coefficients returns the fitted parameters (intercept, lag coefficients,
// rolling-mean coefficient), or nil before Fit.
func (m *LaggedRidge) Coefficients() []float64 {
	if !m.fitted {
		return nil
	}
	return append([]float64(nil), m.coef...)
}
