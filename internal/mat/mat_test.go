package mat

import (
	"errors"
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	t.Parallel()
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("got %d×%d, want 2×3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 4.5)
	if got := m.At(1, 2); got != 4.5 {
		t.Fatalf("At(1,2) = %v, want 4.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("zero value not zero: %v", got)
	}
}

func TestNewFromDataShapeError(t *testing.T) {
	t.Parallel()
	if _, err := NewFromData(2, 2, []float64{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds access")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestIdentity(t *testing.T) {
	t.Parallel()
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if got := id.At(i, j); got != want {
				t.Errorf("I(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestMul(t *testing.T) {
	t.Parallel()
	a, _ := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := NewFromData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromData(2, 2, []float64{58, 64, 139, 154})
	if MaxAbsDiff(got, want) > 1e-12 {
		t.Fatalf("Mul result:\n%vwant:\n%v", got, want)
	}
}

func TestMulShapeError(t *testing.T) {
	t.Parallel()
	a := New(2, 3)
	b := New(2, 3)
	if _, err := Mul(a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMulIdentityProperty(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(8)
		a := randomDense(rng, n, n)
		got, err := Mul(a, Identity(n))
		if err != nil {
			t.Fatal(err)
		}
		if MaxAbsDiff(got, a) > 1e-12 {
			t.Fatalf("A·I != A for n=%d", n)
		}
	}
}

func TestMulVec(t *testing.T) {
	t.Parallel()
	a, _ := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got, err := MulVec(a, []float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
	if _, err := MulVec(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestAddSubScale(t *testing.T) {
	t.Parallel()
	a, _ := NewFromData(2, 2, []float64{1, 2, 3, 4})
	b, _ := NewFromData(2, 2, []float64{5, 6, 7, 8})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := Sub(sum, b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(diff, a) > 1e-12 {
		t.Fatal("(a+b)-b != a")
	}
	twice := Scale(2, a)
	if twice.At(1, 1) != 8 {
		t.Fatalf("Scale: got %v, want 8", twice.At(1, 1))
	}
	// Ensure inputs were not mutated.
	if a.At(0, 0) != 1 || b.At(0, 0) != 5 {
		t.Fatal("Add/Sub/Scale mutated their inputs")
	}
}

func TestTranspose(t *testing.T) {
	t.Parallel()
	a, _ := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T shape %d×%d, want 3×2", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", at)
	}
	if MaxAbsDiff(at.T(), a) > 0 {
		t.Fatal("double transpose not identity")
	}
}

func TestRowColSetRow(t *testing.T) {
	t.Parallel()
	a, _ := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r := a.Row(1)
	r[0] = 99 // must not alias
	if a.At(1, 0) != 4 {
		t.Fatal("Row returned aliasing slice")
	}
	c := a.Col(2)
	if c[0] != 3 || c[1] != 6 {
		t.Fatalf("Col = %v", c)
	}
	a.SetRow(0, []float64{7, 8, 9})
	if a.At(0, 2) != 9 {
		t.Fatal("SetRow did not write")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.IntN(10)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("cholesky n=%d: %v", n, err)
		}
		lt := l.T()
		recon, err := Mul(l, lt)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(recon, a); d > 1e-8 {
			t.Fatalf("L·Lᵀ differs from A by %g (n=%d)", d, n)
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	t.Parallel()
	a, _ := NewFromData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("want ErrNotSPD, got %v", err)
	}
	b := New(2, 3)
	if _, err := Cholesky(b); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for non-square, got %v", err)
	}
}

func TestSolveCholesky(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.IntN(10)
		a := randomSPD(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, err := MulVec(a, want)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveCholesky(l, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("solve mismatch at %d: got %v want %v", i, got[i], want[i])
			}
		}
	}
}

func TestInvertSPD(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(11, 4))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.IntN(8)
		a := randomSPD(rng, n)
		inv, err := InvertSPD(a)
		if err != nil {
			t.Fatal(err)
		}
		prod, err := Mul(a, inv)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(prod, Identity(n)); d > 1e-6 {
			t.Fatalf("A·A⁻¹ differs from I by %g (n=%d)", d, n)
		}
	}
}

func TestRegularizeSPD(t *testing.T) {
	t.Parallel()
	// Singular matrix becomes factorizable after jitter.
	a, _ := NewFromData(2, 2, []float64{1, 1, 1, 1})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected failure on singular matrix")
	}
	if _, err := Cholesky(RegularizeSPD(a, 1e-6)); err != nil {
		t.Fatalf("regularized cholesky failed: %v", err)
	}
	if a.At(0, 0) != 1 {
		t.Fatal("RegularizeSPD mutated input")
	}
}

func TestLogDetCholesky(t *testing.T) {
	t.Parallel()
	a, _ := NewFromData(2, 2, []float64{4, 0, 0, 9}) // det = 36
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := LogDetCholesky(l), math.Log(36); math.Abs(got-want) > 1e-12 {
		t.Fatalf("logdet = %v, want %v", got, want)
	}
}

func TestSubmatrix(t *testing.T) {
	t.Parallel()
	a, _ := NewFromData(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	s := Submatrix(a, []int{0, 2}, []int{1})
	if s.Rows() != 2 || s.Cols() != 1 || s.At(0, 0) != 2 || s.At(1, 0) != 8 {
		t.Fatalf("Submatrix wrong: %v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	a := New(1, 1)
	b := a.Clone()
	b.Set(0, 0, 5)
	if a.At(0, 0) != 0 {
		t.Fatal("Clone aliases original")
	}
}

// Property: matrix multiplication is associative (A·B)·C == A·(B·C) within
// floating-point tolerance.
func TestMulAssociativityProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x9e37))
		n := 1 + int(seed%5)
		a := randomDense(r, n, n)
		b := randomDense(r, n, n)
		c := randomDense(r, n, n)
		ab, _ := Mul(a, b)
		abc1, _ := Mul(ab, c)
		bc, _ := Mul(b, c)
		abc2, _ := Mul(a, bc)
		return MaxAbsDiff(abc1, abc2) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 30, Rand: mrand.New(mrand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// randomSPD builds A = GᵀG + n·I which is symmetric positive definite.
func randomSPD(rng *rand.Rand, n int) *Dense {
	g := randomDense(rng, n, n)
	gt := g.T()
	a, err := Mul(gt, g)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}
