package optimize

import (
	"errors"
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	t.Parallel()
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+2)*(x[1]+2)
	}
	res, err := NelderMead(f, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-3 || math.Abs(res.X[1]+2) > 1e-3 {
		t.Fatalf("minimum at %v, want (3,-2)", res.X)
	}
	if !res.Converged {
		t.Fatal("should converge on a quadratic")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	t.Parallel()
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := NelderMead(f, []float64{-1.2, 1}, Options{MaxEvaluations: 5000, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 || math.Abs(res.X[1]-1) > 1e-2 {
		t.Fatalf("Rosenbrock minimum at %v, want (1,1)", res.X)
	}
}

func TestNelderMeadOneDimensional(t *testing.T) {
	t.Parallel()
	f := func(x []float64) float64 { return math.Abs(x[0] - 0.5) }
	res, err := NelderMead(f, []float64{-4}, Options{MaxEvaluations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.5) > 1e-3 {
		t.Fatalf("minimum at %v, want 0.5", res.X[0])
	}
}

func TestNelderMeadInfeasibleRegion(t *testing.T) {
	t.Parallel()
	// Objective defined only for x > 0; +Inf outside. The optimizer must
	// stay in the feasible region and find the minimum at x=2.
	f := func(x []float64) float64 {
		if x[0] <= 0 {
			return math.Inf(1)
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	res, err := NelderMead(f, []float64{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-3 {
		t.Fatalf("constrained minimum at %v, want 2", res.X[0])
	}
}

func TestNelderMeadNaNTreatedAsInf(t *testing.T) {
	t.Parallel()
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return x[0] * x[0]
	}
	res, err := NelderMead(f, []float64{5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] < -1e-6 || res.F > 1e-4 {
		t.Fatalf("NaN region entered: x=%v f=%v", res.X, res.F)
	}
}

func TestNelderMeadBudget(t *testing.T) {
	t.Parallel()
	calls := 0
	f := func(x []float64) float64 {
		calls++
		return x[0] * x[0]
	}
	res, err := NelderMead(f, []float64{100}, Options{MaxEvaluations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 12 { // small overshoot allowed within one iteration
		t.Fatalf("used %d evaluations with budget 10", res.Evaluations)
	}
	if calls != res.Evaluations {
		t.Fatalf("reported %d evaluations, actual %d", res.Evaluations, calls)
	}
}

func TestNelderMeadErrors(t *testing.T) {
	t.Parallel()
	if _, err := NelderMead(nil, []float64{1}, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil objective: want ErrBadInput, got %v", err)
	}
	if _, err := NelderMead(func([]float64) float64 { return 0 }, nil, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty start: want ErrBadInput, got %v", err)
	}
}

func TestNelderMeadAllInfeasibleStops(t *testing.T) {
	t.Parallel()
	f := func([]float64) float64 { return math.Inf(1) }
	res, err := NelderMead(f, []float64{0, 0}, Options{MaxEvaluations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.F, 1) {
		t.Fatalf("expected +Inf objective, got %v", res.F)
	}
}
