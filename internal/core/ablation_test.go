package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"orcf/internal/forecast"
)

// churningTrace builds N nodes in two moving groups whose levels cross over
// time, so coherent cluster identity matters for forecasting.
func churningTrace(steps, n int, seed uint64) [][][]float64 {
	rng := rand.New(rand.NewPCG(seed, seed^77))
	out := make([][][]float64, steps)
	for t := 0; t < steps; t++ {
		lo := 0.25 + 0.15*math.Sin(float64(t)/30)
		hi := 0.75 + 0.15*math.Cos(float64(t)/40)
		row := make([][]float64, n)
		for i := 0; i < n; i++ {
			level := lo
			if i >= n/2 {
				level = hi
			}
			row[i] = []float64{level + 0.01*rng.NormFloat64()}
		}
		out[t] = row
	}
	return out
}

func runRMSE(t *testing.T, cfg Config, steps [][][]float64, h int) float64 {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sumSq float64
	var count int
	for ti, x := range steps {
		if _, err := sys.Step(x); err != nil {
			t.Fatal(err)
		}
		if !sys.Ready() || ti+h >= len(steps) {
			continue
		}
		f, err := sys.Forecast(h)
		if err != nil {
			t.Fatal(err)
		}
		truth := steps[ti+h]
		for i := range truth {
			d := f[h-1][i][0] - truth[i][0]
			sumSq += d * d
			count++
		}
	}
	if count == 0 {
		t.Fatal("no forecasts scored")
	}
	return math.Sqrt(sumSq / float64(count))
}

// TestDisableMatchingDegradesForecasts: without the Hungarian re-indexing
// the centroid series scramble across clusters and forecasting degrades —
// the justification for §V-B.
func TestDisableMatchingDegradesForecasts(t *testing.T) {
	t.Parallel()
	steps := churningTrace(160, 16, 5)
	base := Config{
		Nodes: 16, K: 2, InitialCollection: 40, RetrainEvery: 500,
		Policy: alwaysPolicy, Seed: 2,
		Model: func() forecast.Model { return forecast.NewSampleAndHold() },
	}
	withMatching := runRMSE(t, base, steps, 3)
	noMatching := base
	noMatching.DisableMatching = true
	withoutMatching := runRMSE(t, noMatching, steps, 3)
	if withMatching >= withoutMatching {
		t.Fatalf("matching RMSE %v should beat no-matching %v", withMatching, withoutMatching)
	}
	// The gap should be substantial: raw K-means labels are arbitrary.
	if withoutMatching < withMatching*1.5 {
		t.Logf("note: no-matching only %vx worse (%v vs %v)",
			withoutMatching/withMatching, withoutMatching, withMatching)
	}
}

// TestDisableAlphaClampChangesOffsets: with the α-clamp off, a node whose
// stored value sits outside its forecast cluster's cell receives the raw
// offset. The flag must actually change behaviour.
func TestDisableAlphaClampChangesOffsets(t *testing.T) {
	t.Parallel()
	// Node 3 oscillates between the two groups so its mode cluster and its
	// instantaneous position disagree regularly.
	mk := func(t int) [][]float64 {
		x := [][]float64{{0.1}, {0.12}, {0.14}, {0.5}, {0.86}, {0.88}, {0.9}, {0.92}}
		if t%2 == 0 {
			x[3][0] = 0.75
		}
		return x
	}
	build := func(disable bool) float64 {
		sys, err := NewSystem(Config{
			Nodes: 8, K: 2, InitialCollection: 10, MPrime: 4,
			Policy: alwaysPolicy, Seed: 3, DisableAlphaClamp: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 20; step++ {
			if _, err := sys.Step(mk(step)); err != nil {
				t.Fatal(err)
			}
		}
		f, err := sys.Forecast(1)
		if err != nil {
			t.Fatal(err)
		}
		return f[0][3][0]
	}
	clamped := build(false)
	raw := build(true)
	if clamped == raw {
		t.Fatalf("α-clamp flag had no effect (both %v)", clamped)
	}
}

func TestStepRejectsNaNAndInf(t *testing.T) {
	t.Parallel()
	sys, err := NewSystem(Config{Nodes: 2, K: 1, Policy: alwaysPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step([][]float64{{math.NaN()}, {0.5}}); err == nil {
		t.Fatal("NaN measurement must be rejected")
	}
	if _, err := sys.Step([][]float64{{math.Inf(1)}, {0.5}}); err == nil {
		t.Fatal("Inf measurement must be rejected")
	}
}
