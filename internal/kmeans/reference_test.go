package kmeans

// This file preserves the pre-SoA slice-of-rows K-means implementation,
// verbatim, as the reference oracle for the differential tests that pin the
// flat Runner bit-identical (same assignments, centroids, inertia, iteration
// count, and RNG draw sequence). Do not "fix" or optimize it: its exact
// arithmetic order is the contract.

import (
	"math"
	"math/rand/v2"
)

func refRun(points [][]float64, cfg Config, rng *rand.Rand) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(points, cfg); err != nil {
		return nil, err
	}
	n := len(points)
	k := cfg.K
	if k >= n {
		return refTrivialResult(points), nil
	}

	centroids := refSeedPlusPlus(points, k, rng)
	assign := make([]int, n)
	prev := make([][]float64, k)
	var iter int
	for iter = 1; iter <= cfg.MaxIterations; iter++ {
		// Assignment step.
		for i, p := range points {
			assign[i] = nearest(p, centroids)
		}
		// Update step.
		for j := range centroids {
			prev[j] = centroids[j]
		}
		centroids = refRecompute(points, assign, k, len(points[0]))
		refRepairEmpty(points, assign, centroids, rng)
		// Convergence check.
		moved := 0.0
		for j := range centroids {
			moved = math.Max(moved, sqDist(centroids[j], prev[j]))
		}
		if moved <= cfg.Tolerance {
			break
		}
	}
	// Final assignment against the converged centroids.
	inertia := 0.0
	for i, p := range points {
		assign[i] = nearest(p, centroids)
		inertia += sqDist(p, centroids[assign[i]])
	}
	return &Result{
		Assignments: assign,
		Centroids:   centroids,
		Inertia:     inertia,
		Iterations:  iter,
	}, nil
}

// refTrivialResult handles K ≥ n: each point becomes its own cluster, so the
// result has n centroids (one per point) and zero inertia.
func refTrivialResult(points [][]float64) *Result {
	n := len(points)
	centroids := make([][]float64, n)
	assign := make([]int, n)
	for i, p := range points {
		c := make([]float64, len(p))
		copy(c, p)
		centroids[i] = c
		assign[i] = i
	}
	return &Result{Assignments: assign, Centroids: centroids}
}

// refSeedPlusPlus implements the k-means++ seeding of Arthur & Vassilvitskii:
// the first centroid is uniform, each next centroid is sampled proportional
// to the squared distance to the closest already-chosen centroid.
func refSeedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := points[rng.IntN(n)]
	centroids = append(centroids, cloneVec(first))

	d2 := make([]float64, n)
	for i, p := range points {
		d2[i] = sqDist(p, centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, v := range d2 {
			total += v
		}
		var idx int
		if total <= 0 {
			// All points coincide with existing centroids; pick uniformly.
			idx = rng.IntN(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, v := range d2 {
				acc += v
				if acc >= r {
					idx = i
					break
				}
			}
		}
		c := cloneVec(points[idx])
		centroids = append(centroids, c)
		for i, p := range points {
			if d := sqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

func refRecompute(points [][]float64, assign []int, k, d int) [][]float64 {
	sums := make([][]float64, k)
	counts := make([]int, k)
	for j := range sums {
		sums[j] = make([]float64, d)
	}
	for i, p := range points {
		j := assign[i]
		counts[j]++
		for t, v := range p {
			sums[j][t] += v
		}
	}
	for j := range sums {
		if counts[j] == 0 {
			continue // repaired by refRepairEmpty
		}
		inv := 1 / float64(counts[j])
		for t := range sums[j] {
			sums[j][t] *= inv
		}
	}
	return sums
}

// refRepairEmpty relocates centroids of empty clusters to the point that is
// currently farthest from its assigned centroid, the standard strategy to
// keep exactly K non-empty clusters.
func refRepairEmpty(points [][]float64, assign []int, centroids [][]float64, rng *rand.Rand) {
	counts := make([]int, len(centroids))
	for _, a := range assign {
		counts[a]++
	}
	for j := range centroids {
		if counts[j] > 0 {
			continue
		}
		far, farDist := -1, -1.0
		for i, p := range points {
			if counts[assign[i]] <= 1 {
				continue // do not empty another cluster
			}
			if d := sqDist(p, centroids[assign[i]]); d > farDist {
				far, farDist = i, d
			}
		}
		if far < 0 {
			far = rng.IntN(len(points))
		}
		counts[assign[far]]--
		assign[far] = j
		counts[j] = 1
		centroids[j] = cloneVec(points[far])
	}
}
