package transport

import (
	"strings"
	"testing"
	"time"

	"orcf/internal/obs"
)

// TestServerMetricsV2 drives a compressed v2 batch stream plus a heartbeat
// and checks every ingest counter, including the compression ratio and the
// reconnect counter on a redial.
func TestServerMetricsV2(t *testing.T) {
	store := NewStore()
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg)
	store.RegisterMetrics(reg)
	m := srv.Metrics()

	c, err := DialBatch(addr, 3, BatchOptions{BatchSize: 4, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 64) // compressible: all zeros
	for step := 1; step <= 4; step++ {
		if err := c.Send(step, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Advance(9)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		return m.RecordsIn.Value() == 4 && m.HeartbeatsIn.Value() == 1
	}, 5*time.Second, "batch + heartbeat ingested")

	if m.BatchesIn.Value() != 1 || m.CompressedBatches.Value() != 1 {
		t.Fatalf("batches=%d compressed=%d, want 1/1",
			m.BatchesIn.Value(), m.CompressedBatches.Value())
	}
	if m.FramesIn.Value() != 3 { // hello + batch + heartbeat
		t.Fatalf("frames = %d, want 3", m.FramesIn.Value())
	}
	if m.BatchRawBytes.Value() <= m.BatchWireBytes.Value() {
		t.Fatalf("all-zero batch did not compress: raw=%d wire=%d",
			m.BatchRawBytes.Value(), m.BatchWireBytes.Value())
	}
	if m.ConnsTotal.Value() != 1 || m.ConnsActive.Value() != 1 {
		t.Fatalf("conns total=%d active=%v, want 1/1",
			m.ConnsTotal.Value(), m.ConnsActive.Value())
	}
	if m.BytesIn.Value() == 0 {
		t.Fatal("no bytes counted")
	}

	// Client-side egress mirrors the server's view.
	cm := c.Metrics()
	if cm.BatchesOut.Value() != 1 || cm.RecordsOut.Value() != 4 ||
		cm.HeartbeatsOut.Value() != 1 || cm.BytesOut.Value() == 0 {
		t.Fatalf("client egress: %+v", cm)
	}

	// Store accounting: 4 accepted, a replayed stale step rejected.
	sm := store.Metrics()
	if sm.Applied.Value() != 4 {
		t.Fatalf("store applied = %d, want 4", sm.Applied.Value())
	}
	store.Apply(Measurement{Node: 3, Step: 2, Values: []float64{1}})
	if sm.Stale.Value() != 1 {
		t.Fatalf("store stale = %d, want 1", sm.Stale.Value())
	}
	store.Forget(3)
	if sm.Forgotten.Value() != 1 {
		t.Fatalf("store forgotten = %d, want 1", sm.Forgotten.Value())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Same node reconnecting is counted as a redial (v1 this time — the
	// counter spans both generations).
	c1, err := Dial(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Send(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return m.Reconnects.Value() == 1 }, 5*time.Second, "reconnect noticed")
	_ = c1.Close()
	waitFor(t, func() bool { return m.ConnsActive.Value() == 0 }, 5*time.Second, "conn drained")

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, series := range []string{
		"orcf_ingest_connections_total 2", "orcf_ingest_reconnects_total 1",
		"orcf_ingest_protocol_errors_total 0", "orcf_ingest_compression_ratio",
		"orcf_store_applied_total 5", "orcf_store_stale_total 1",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("exposition missing %q:\n%s", series, out)
		}
	}
}

// TestReconnectingClientCounters pins the agent-side redial accounting.
func TestReconnectingClientCounters(t *testing.T) {
	store := NewStore()
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	rc := NewReconnectingClient(addr, 1)
	rc.SetBackoff(time.Millisecond, 2*time.Millisecond)
	defer rc.Close()
	if err := rc.Send(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if rc.Reconnects() != 0 {
		t.Fatalf("fresh client reports %d reconnects", rc.Reconnects())
	}

	// Kill the server; sends now fail and open the backoff window.
	_ = srv.Close()
	waitFor(t, func() bool {
		return rc.Send(2, []float64{1}) != nil
	}, 5*time.Second, "send failure after server death")
	waitFor(t, func() bool {
		_ = rc.Send(3, []float64{1})
		return rc.BackoffFailures() > 0
	}, 5*time.Second, "backoff failure counted")

	// Revive on the same port and watch the redial land.
	srv2, err := NewServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("port %s not reusable: %v", addr, err)
	}
	waitFor(t, func() bool {
		return rc.Send(4, []float64{1}) == nil
	}, 5*time.Second, "successful redial")
	if rc.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", rc.Reconnects())
	}
}
