package cluster

import "fmt"

// State is the complete serializable state of a Tracker (everything that
// evolves across Update calls). It does not include the K-means RNG: the
// Tracker borrows its *rand.Rand from the caller, so the caller that wants
// deterministic resumption must capture and restore the underlying source
// alongside this State (core.System does exactly that for its trackers).
type State struct {
	// T is the number of processed updates.
	T int
	// Dim pins the point dimensionality seen at the first update and N the
	// current slot count (0 until then; N may have grown across updates).
	Dim, N int
	// Hist is the assignment ring, most recent first. -1 marks a slot that
	// was absent at that step; vectors recorded before the fleet grew may be
	// shorter than N, with missing entries reading as absent.
	Hist [][]int
	// CentroidSeries is the full centroid history, indexed [cluster][dim][t].
	CentroidSeries [][][]float64
}

// ExportState deep-copies the tracker's mutable state. The returned State
// shares no memory with the tracker, so it may be serialized concurrently
// with further updates to the live tracker.
func (tr *Tracker) ExportState() *State {
	st := &State{T: tr.t, Dim: tr.dim, N: tr.n}
	st.Hist = make([][]int, tr.histLen)
	for i := 0; i < tr.histLen; i++ {
		h := tr.hist[(tr.histHead-i+len(tr.hist))%len(tr.hist)]
		st.Hist[i] = append([]int(nil), h...)
	}
	if tr.centroidSeries != nil {
		st.CentroidSeries = make([][][]float64, len(tr.centroidSeries))
		for j, byDim := range tr.centroidSeries {
			st.CentroidSeries[j] = make([][]float64, len(byDim))
			for d, series := range byDim {
				st.CentroidSeries[j][d] = append([]float64(nil), series...)
			}
		}
	}
	return st
}

// RestoreState replaces a freshly constructed tracker's state with an
// exported one. The tracker must not have processed any update yet, and the
// state must match the tracker's configuration (K, history depth bounds,
// assignment ranges). The State is deep-copied; the caller keeps ownership.
func (tr *Tracker) RestoreState(st *State) error {
	if tr.t != 0 {
		return fmt.Errorf("cluster: restore into tracker with %d steps: %w", tr.t, ErrBadInput)
	}
	if st == nil {
		return fmt.Errorf("cluster: nil state: %w", ErrBadInput)
	}
	if st.T < 0 || st.Dim < 0 || st.N < 0 {
		return fmt.Errorf("cluster: negative state counters: %w", ErrBadInput)
	}
	if st.T == 0 {
		if len(st.Hist) != 0 || st.CentroidSeries != nil {
			return fmt.Errorf("cluster: zero-step state carries history: %w", ErrBadInput)
		}
		return nil
	}
	if len(st.Hist) == 0 || len(st.Hist) > tr.cfg.HistoryDepth || len(st.Hist) > st.T {
		return fmt.Errorf("cluster: history length %d (depth %d, %d steps): %w",
			len(st.Hist), tr.cfg.HistoryDepth, st.T, ErrBadInput)
	}
	for _, h := range st.Hist {
		// Vectors recorded before the fleet grew are shorter than the current
		// slot count; missing entries read as absent (-1).
		if len(h) > st.N {
			return fmt.Errorf("cluster: assignment vector length %d > %d slots: %w", len(h), st.N, ErrBadInput)
		}
		for _, j := range h {
			if j < -1 || j >= tr.cfg.K {
				return fmt.Errorf("cluster: assignment %d outside [-1,%d): %w", j, tr.cfg.K, ErrBadInput)
			}
		}
	}
	if len(st.CentroidSeries) != tr.cfg.K {
		return fmt.Errorf("cluster: %d centroid series, want K=%d: %w",
			len(st.CentroidSeries), tr.cfg.K, ErrBadInput)
	}
	for j, byDim := range st.CentroidSeries {
		if len(byDim) != st.Dim {
			return fmt.Errorf("cluster: cluster %d has %d dims, want %d: %w", j, len(byDim), st.Dim, ErrBadInput)
		}
		for d, series := range byDim {
			if len(series) != st.T {
				return fmt.Errorf("cluster: series (%d,%d) has %d values, want %d: %w",
					j, d, len(series), st.T, ErrBadInput)
			}
		}
	}

	tr.t = st.T
	tr.dim = st.Dim
	tr.n = st.N
	// The wire format stores history most-recent-first; rebuild the ring so
	// hist[histHead] is the newest row.
	tr.hist = make([][]int, tr.cfg.HistoryDepth)
	tr.histLen = len(st.Hist)
	tr.histHead = tr.histLen - 1
	for i, h := range st.Hist {
		tr.hist[tr.histLen-1-i] = append([]int(nil), h...)
	}
	tr.rebuildStreaks()
	tr.centroidSeries = make([][][]float64, len(st.CentroidSeries))
	for j, byDim := range st.CentroidSeries {
		tr.centroidSeries[j] = make([][]float64, len(byDim))
		for d, series := range byDim {
			tr.centroidSeries[j][d] = append([]float64(nil), series...)
		}
	}
	// Re-seed warm incremental refits from the last recorded centroids.
	tr.prevCents = make([]float64, tr.cfg.K*tr.dim)
	for j, byDim := range st.CentroidSeries {
		for d, series := range byDim {
			tr.prevCents[j*tr.dim+d] = series[st.T-1]
		}
	}
	return nil
}

// rebuildStreaks recomputes the eq. (10) run-length counters from the
// restored history ring. Scanning min(M, histLen) rows reproduces exactly
// the counters the tracker would have maintained online: a run can never
// exceed t, histLen ≥ min(M, t), and both paths cap runs at M.
func (tr *Tracker) rebuildStreaks() {
	tr.streak = make([]int, tr.n)
	tr.streakVal = make([]int, tr.n)
	limit := min(tr.cfg.M, tr.histLen)
	for i := 0; i < tr.n; i++ {
		j := tr.histAt(0, i)
		if j < 0 {
			tr.streakVal[i] = -1
			continue
		}
		run := 1
		for m := 1; m < limit && tr.histAt(m, i) == j; m++ {
			run++
		}
		tr.streak[i] = run
		tr.streakVal[i] = j
	}
}
