// Command orcflint runs the project-invariant analyzer suite
// (internal/tools/orcflint) over a set of package patterns and exits nonzero
// on any diagnostic. It must run from inside the module (any directory under
// the repository root) so intra-module import paths resolve; `make lint` and
// the CI workflow invoke it as `go run ./cmd/orcflint ./...`.
package main

import (
	"flag"
	"fmt"
	"os"

	"orcf/internal/tools/orcflint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer names and docs, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: orcflint [-list] [packages]\n\nruns the orcf invariant analyzers over the package patterns (default ./...)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := orcflint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := orcflint.NewLoader()
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	failed := false
	for _, pkg := range pkgs {
		diags, err := orcflint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d.String())
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
