package persist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"orcf/internal/core"
)

// ErrBadConfig reports invalid Manager options.
var ErrBadConfig = errors.New("persist: invalid configuration")

// Options configures a Manager.
type Options struct {
	// Dir is the state directory (created if missing). Required.
	Dir string
	// CheckpointEvery triggers an automatic background checkpoint whenever
	// LogStep records a step divisible by it. Zero means 256; negative
	// disables automatic checkpoints (explicit Checkpoint calls only).
	CheckpointEvery int
	// Retain is how many checkpoints (with their WAL epochs) to keep.
	// Values below 2 mean 2: the newest checkpoint plus one fallback, so a
	// checkpoint torn by a crash mid-write never leaves recovery empty-handed.
	Retain int
	// Fsync makes every WAL append fsync before returning — full
	// single-step durability at a heavy per-step cost. Off, appends are
	// flushed to the OS per record (surviving process crashes) and fsynced
	// at every checkpoint (bounding data loss after an OS crash to one
	// checkpoint interval). Checkpoint files are always fsynced.
	Fsync bool
}

func (o Options) withDefaults() Options {
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 256
	}
	if o.Retain < 2 {
		o.Retain = 2
	}
	return o
}

// RecoveryInfo reports what Recover found and did.
type RecoveryInfo struct {
	// CheckpointStep is the step of the restored checkpoint (-1 when the
	// directory held no usable checkpoint and the system started fresh).
	CheckpointStep int
	// ReplayedSteps is how many WAL records were replayed past the
	// checkpoint.
	ReplayedSteps int
	// Steps is the system's step count after recovery.
	Steps int
	// TornTail reports whether a torn or corrupt WAL suffix was discarded
	// (expected after a crash mid-append; the intact prefix was replayed).
	TornTail bool
	// SkippedCheckpoints counts checkpoint files that failed validation and
	// were passed over for an older one.
	SkippedCheckpoints int
}

// ReplayFunc applies one recovered WAL record to the system during Recover.
// step is the 1-based step index; ids and alive the fleet roster recorded
// at Step entry (reconcile it into the system with
// core.System.ReconcileRoster before stepping, so membership changes replay
// at the exact steps they originally happened); x the measurement tensor
// fed to the original Step; arrived the per-slot fresh-arrival flags
// recorded with it (serve.StoreStepper needs them to mirror the original
// transmission decisions — plain systems can ignore them and let their
// restored policies re-decide, which reproduces the original decisions
// exactly).
type ReplayFunc func(step int, ids []int, alive []bool, x [][]float64, arrived []bool) error

// Manager gives one core.System durable state: it logs every step's
// measurements to the WAL, periodically checkpoints the full system state in
// the background, and recovers checkpoint + WAL tail on boot.
//
// Concurrency: Recover, LogStep, Step, Checkpoint, and Close must all be
// called from the goroutine that steps the system (the ingest loop) — like
// Step itself they are not concurrent-safe. The expensive parts of a
// checkpoint (gob encoding, CRC, fsync, rename) run on a background
// goroutine over a deep copy, so the ingest loop only ever pays for the
// in-memory state copy. Stats is safe from any goroutine.
type Manager struct {
	sys  *core.System
	opts Options
	fp   uint64
	dims int

	wal       *walWriter
	recovered bool
	closed    bool

	ckptBusy atomic.Bool    // one background checkpoint at a time
	wg       sync.WaitGroup // tracks the in-flight background checkpoint

	checkpoints    atomic.Int64
	ckptErrors     atomic.Int64
	lastCkptStep   atomic.Int64
	lastCkptNanos  atomic.Int64
	ckptWorkNanos  atomic.Int64
	lastCkptWork   atomic.Int64
	walRecords     atomic.Int64
	walBytes       atomic.Int64
	walAppendNanos atomic.Int64
	recoveredStep  atomic.Int64
	replayedSteps  atomic.Int64
}

// Stats is a point-in-time view of the Manager's accounting, shaped for the
// serving plane's /v1/stats and /metrics endpoints.
type Stats struct {
	// Checkpoints counts durably completed checkpoints this process.
	Checkpoints int64
	// CheckpointErrors counts failed checkpoint attempts.
	CheckpointErrors int64
	// LastCheckpointStep is the step of the newest durable checkpoint (0
	// before the first).
	LastCheckpointStep int64
	// LastCheckpointTime is when it completed (zero before the first).
	LastCheckpointTime time.Time
	// LastCheckpointDuration is how long the newest durable checkpoint took
	// to encode and write (zero before the first).
	LastCheckpointDuration time.Duration
	// CheckpointTime is the cumulative wall time spent encoding and durably
	// writing checkpoints this process (successful attempts only; the work
	// usually runs on the background goroutine, off the stepping hot path).
	CheckpointTime time.Duration
	// WALRecords and WALBytes count appended records this process.
	WALRecords int64
	// WALBytes is the total bytes appended to the WAL this process.
	WALBytes int64
	// WALAppendTime is the cumulative wall time LogStep spent appending
	// records — stepping-goroutine time, the WAL's direct cost to the
	// ingest loop.
	WALAppendTime time.Duration
	// RecoveredStep is the step the system resumed from at boot (0 for a
	// fresh start).
	RecoveredStep int64
	// ReplayedSteps is how many WAL records recovery replayed at boot.
	ReplayedSteps int64
}

// New validates the options and prepares a Manager for a freshly
// constructed system. cfg must be the configuration the system was built
// from (it determines the state fingerprint and record shape). Call Recover
// next — before the first Step.
func New(sys *core.System, cfg core.Config, opts Options) (*Manager, error) {
	if sys == nil {
		return nil, fmt.Errorf("persist: nil system: %w", ErrBadConfig)
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: empty state dir: %w", ErrBadConfig)
	}
	if sys.Steps() != 0 {
		return nil, fmt.Errorf("persist: system already at step %d: %w", sys.Steps(), ErrBadConfig)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	dims := cfg.Resources
	if dims == 0 {
		dims = 1
	}
	return &Manager{
		sys:  sys,
		opts: opts.withDefaults(),
		fp:   cfg.Fingerprint(),
		dims: dims,
	}, nil
}

// System returns the managed pipeline.
func (m *Manager) System() *core.System { return m.sys }

// Recover restores the newest valid checkpoint (if any) into the system and
// replays the WAL tail through replay (nil means feed records straight to
// System.Step). It must be called exactly once, before any stepping, and
// finishes by starting a fresh WAL epoch at the recovered step. Unusable
// files — torn checkpoints, WAL records beyond a gap — are skipped or
// removed, never fatal; only I/O failures and replay errors are.
func (m *Manager) Recover(replay ReplayFunc) (*RecoveryInfo, error) {
	if m.recovered {
		return nil, fmt.Errorf("persist: Recover called twice: %w", ErrBadConfig)
	}
	m.recovered = true
	if replay == nil {
		replay = func(_ int, ids []int, alive []bool, x [][]float64, _ []bool) error {
			if err := m.sys.ReconcileRoster(ids, alive); err != nil {
				return err
			}
			_, err := m.sys.Step(x)
			return err
		}
	}

	info := &RecoveryInfo{CheckpointStep: -1}
	ckpts, err := listSteps(m.opts.Dir, "ckpt-", ".ckpt")
	if err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ckpts)))
	for _, step := range ckpts {
		st, err := m.readCheckpoint(step)
		if err != nil {
			if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrMismatch) || errors.Is(err, core.ErrBadState) {
				info.SkippedCheckpoints++
				continue
			}
			return nil, err
		}
		if err := m.sys.RestoreState(st); err != nil {
			// Validation failures leave the system untouched; try older.
			if errors.Is(err, core.ErrBadState) && m.sys.Steps() == 0 {
				info.SkippedCheckpoints++
				continue
			}
			return nil, err
		}
		info.CheckpointStep = step
		m.lastCkptStep.Store(int64(step))
		break
	}

	wals, err := listSteps(m.opts.Dir, "wal-", ".wal")
	if err != nil {
		return nil, err
	}
	for _, epoch := range wals {
		if epoch > m.sys.Steps() {
			break // unreachable beyond a gap; removed below
		}
		recs, torn, err := readWAL(filepath.Join(m.opts.Dir, walName(epoch)), m.fp, m.dims)
		if err != nil {
			if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrMismatch) {
				info.TornTail = info.TornTail || errors.Is(err, ErrCorrupt)
				break
			}
			return nil, err
		}
		stop := false
		for _, rec := range recs {
			if rec.step <= m.sys.Steps() {
				continue
			}
			if rec.step != m.sys.Steps()+1 {
				stop = true // gap: later records belong to a lost lineage
				break
			}
			if err := replay(rec.step, rec.ids, rec.alive, rec.x, rec.arrived); err != nil {
				return nil, fmt.Errorf("persist: replaying step %d: %w", rec.step, err)
			}
			info.ReplayedSteps++
		}
		if stop || torn {
			info.TornTail = info.TornTail || torn
			break
		}
	}
	info.Steps = m.sys.Steps()
	m.recoveredStep.Store(int64(info.Steps))
	m.replayedSteps.Store(int64(info.ReplayedSteps))

	// Drop WAL epochs past the recovered step: they belong to a lineage this
	// run now diverges from, and a later recovery must not chain into them.
	for _, epoch := range wals {
		if epoch > m.sys.Steps() {
			if err := os.Remove(filepath.Join(m.opts.Dir, walName(epoch))); err != nil {
				return nil, fmt.Errorf("persist: %w", err)
			}
		}
	}
	m.wal, err = createWAL(filepath.Join(m.opts.Dir, walName(m.sys.Steps())),
		m.fp, m.dims, m.opts.Fsync)
	if err != nil {
		return nil, err
	}
	return info, nil
}

// readCheckpoint loads and decodes one checkpoint file.
func (m *Manager) readCheckpoint(step int) (*core.State, error) {
	payload, err := ReadBlob(filepath.Join(m.opts.Dir, checkpointName(step)), KindCheckpoint)
	if err != nil {
		return nil, err
	}
	st := new(core.State)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("persist: %s: %w: %v", checkpointName(step), ErrCorrupt, err)
	}
	if st.Fingerprint != m.fp {
		return nil, fmt.Errorf("persist: %s: fingerprint %#x, want %#x: %w",
			checkpointName(step), st.Fingerprint, m.fp, ErrMismatch)
	}
	return st, nil
}

// LogStep appends one completed step to the WAL and, when the step count
// hits the checkpoint interval, kicks off a background checkpoint. Call it
// after a successful System.Step with the fleet roster at Step entry and
// the measurements that step consumed (the Manager's Step method does this
// for plain systems). Logging after the step means a crash between the two
// loses at most that single step — recovery resumes from the previous one.
func (m *Manager) LogStep(step int, roster *core.Roster, x [][]float64, arrived []bool) error {
	if !m.recovered || m.closed {
		return fmt.Errorf("persist: LogStep before Recover or after Close: %w", ErrBadConfig)
	}
	t0 := time.Now()
	n, err := m.wal.append(step, roster, x, arrived)
	m.walAppendNanos.Add(int64(time.Since(t0)))
	if err != nil {
		return err
	}
	m.walRecords.Add(1)
	m.walBytes.Add(int64(n))
	if m.opts.CheckpointEvery > 0 && step%m.opts.CheckpointEvery == 0 {
		m.maybeCheckpoint()
	}
	return nil
}

// Step drives the managed system one step and logs it: a convenience for
// systems whose transmission decisions are made by their own policies (the
// serve.StoreStepper path logs explicitly instead, to record network
// arrivals).
func (m *Manager) Step(x [][]float64) (*core.StepResult, error) {
	roster := m.sys.Roster() // before stepping: the layout x is shaped by
	res, err := m.sys.Step(x)
	if err != nil {
		return nil, err
	}
	if err := m.LogStep(res.T, roster, x, res.Transmitted); err != nil {
		return nil, err
	}
	return res, nil
}

// Checkpoint synchronously exports, encodes, and durably writes the current
// state, then rotates the WAL and prunes old epochs. Use it on shutdown
// (SIGTERM); steady-state checkpoints go through LogStep's background path.
// It waits for any in-flight background checkpoint first.
func (m *Manager) Checkpoint() error {
	if !m.recovered || m.closed {
		return fmt.Errorf("persist: Checkpoint before Recover or after Close: %w", ErrBadConfig)
	}
	m.wg.Wait()
	if !m.ckptBusy.CompareAndSwap(false, true) {
		return nil // lost a race with a concurrent close-path checkpoint
	}
	defer m.ckptBusy.Store(false)
	job, err := m.prepareCheckpoint()
	if err != nil || job == nil {
		return err
	}
	if err := job(); err != nil {
		m.ckptErrors.Add(1)
		return err
	}
	return nil
}

// maybeCheckpoint starts a background checkpoint unless one is in flight.
func (m *Manager) maybeCheckpoint() {
	if !m.ckptBusy.CompareAndSwap(false, true) {
		return // previous checkpoint still encoding; skip this interval
	}
	job, err := m.prepareCheckpoint()
	if err != nil {
		m.ckptErrors.Add(1)
		m.ckptBusy.Store(false)
		return
	}
	if job == nil {
		m.ckptBusy.Store(false)
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer m.ckptBusy.Store(false)
		if err := job(); err != nil {
			m.ckptErrors.Add(1)
		}
	}()
}

// prepareCheckpoint does the synchronous part of a checkpoint — the
// in-memory deep copy and the WAL rotation — and returns the slow job
// (encode, write, fsync, prune) to run on either the caller's or a
// background goroutine. It returns a nil job when the state is already
// checkpointed. Must run on the stepping goroutine with ckptBusy held.
func (m *Manager) prepareCheckpoint() (func() error, error) {
	st, err := m.sys.ExportState()
	if err != nil {
		return nil, err
	}
	if int64(st.T) == m.lastCkptStep.Load() {
		return nil, nil
	}
	// Rotate first: records after step T belong to the new epoch whether or
	// not the checkpoint write below succeeds (recovery chains across
	// epochs, so a failed checkpoint just means replaying one epoch more).
	// The new epoch file is created before the old writer closes, so a
	// failed rotation leaves the old writer intact and appends simply keep
	// extending the old epoch — recovery chains through it either way.
	next, err := createWAL(filepath.Join(m.opts.Dir, walName(st.T)),
		m.fp, m.dims, m.opts.Fsync)
	if err != nil {
		return nil, err
	}
	errClose := m.wal.close()
	m.wal = next
	if errClose != nil {
		return nil, errClose
	}
	return func() error {
		t0 := time.Now()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			return fmt.Errorf("persist: encoding checkpoint: %w", err)
		}
		path := filepath.Join(m.opts.Dir, checkpointName(st.T))
		if err := WriteBlobAtomic(path, KindCheckpoint, buf.Bytes()); err != nil {
			return err
		}
		d := int64(time.Since(t0))
		m.checkpoints.Add(1)
		m.ckptWorkNanos.Add(d)
		m.lastCkptWork.Store(d)
		m.lastCkptStep.Store(int64(st.T))
		m.lastCkptNanos.Store(time.Now().UnixNano())
		m.prune(st.T)
		return nil
	}, nil
}

// prune removes checkpoints beyond the retention count and the WAL epochs
// older than the oldest retained checkpoint (each retained checkpoint keeps
// its own epoch, so recovery can always chain forward from any of them).
func (m *Manager) prune(newest int) {
	ckpts, err := listSteps(m.opts.Dir, "ckpt-", ".ckpt")
	if err != nil {
		return // pruning is best-effort; recovery tolerates extra files
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ckpts)))
	oldestKept := newest
	kept := 0
	for _, step := range ckpts {
		if kept < m.opts.Retain {
			kept++
			if step < oldestKept {
				oldestKept = step
			}
			continue
		}
		os.Remove(filepath.Join(m.opts.Dir, checkpointName(step)))
	}
	wals, err := listSteps(m.opts.Dir, "wal-", ".wal")
	if err != nil {
		return
	}
	for _, epoch := range wals {
		if epoch < oldestKept {
			os.Remove(filepath.Join(m.opts.Dir, walName(epoch)))
		}
	}
}

// Stats returns the Manager's accounting; safe from any goroutine.
func (m *Manager) Stats() Stats {
	st := Stats{
		Checkpoints:            m.checkpoints.Load(),
		CheckpointErrors:       m.ckptErrors.Load(),
		LastCheckpointStep:     m.lastCkptStep.Load(),
		LastCheckpointDuration: time.Duration(m.lastCkptWork.Load()),
		CheckpointTime:         time.Duration(m.ckptWorkNanos.Load()),
		WALRecords:             m.walRecords.Load(),
		WALBytes:               m.walBytes.Load(),
		WALAppendTime:          time.Duration(m.walAppendNanos.Load()),
		RecoveredStep:          m.recoveredStep.Load(),
		ReplayedSteps:          m.replayedSteps.Load(),
	}
	if ns := m.lastCkptNanos.Load(); ns != 0 {
		st.LastCheckpointTime = time.Unix(0, ns)
	}
	return st
}

// Close waits for any in-flight background checkpoint and closes the WAL.
// It does not checkpoint; call Checkpoint first for a clean shutdown.
func (m *Manager) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	m.wg.Wait()
	if m.wal != nil {
		return m.wal.close()
	}
	return nil
}
