package mat

import "testing"

func TestFrameRowViewsAlias(t *testing.T) {
	f := NewFrame(3, 2)
	f.SetRow(1, []float64{4, 5})
	row := f.Row(1)
	if row[0] != 4 || row[1] != 5 {
		t.Fatalf("row view = %v, want [4 5]", row)
	}
	// Writes through the view land in the flat backing and vice versa.
	row[0] = 7
	if got := f.Data()[1*2+0]; got != 7 {
		t.Fatalf("data after view write = %v, want 7", got)
	}
	f.Data()[1*2+1] = 9
	if row[1] != 9 {
		t.Fatalf("view after data write = %v, want 9", row[1])
	}
	// Row views are capacity-clamped: appending must not bleed into row 2.
	_ = append(row, 123)
	if got := f.Data()[2*2+0]; got != 0 {
		t.Fatalf("append through row view bled into next row: %v", got)
	}
}

func TestFrameGrowPreservesAndZeroes(t *testing.T) {
	f := NewFrame(2, 3)
	f.SetRow(0, []float64{1, 2, 3})
	f.SetRow(1, []float64{4, 5, 6})
	f.Grow(4)
	if f.Rows() != 4 || f.Cols() != 3 || len(f.Data()) != 12 {
		t.Fatalf("after grow: %d×%d data %d", f.Rows(), f.Cols(), len(f.Data()))
	}
	want := []float64{1, 2, 3, 4, 5, 6, 0, 0, 0, 0, 0, 0}
	for i, v := range f.Data() {
		if v != want[i] {
			t.Fatalf("data[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Growing within capacity must zero the recycled region too.
	g := NewFrame(0, 2)
	g.Grow(2)
	g.SetRow(0, []float64{8, 8})
	g.SetRow(1, []float64{8, 8})
	// Simulate shrink-free reuse: Grow is monotone, so re-grow a fresh frame
	// whose capacity was retained through the same backing.
	h := &Frame{rows: 1, cols: 2, data: g.Data()[:2]}
	h.Grow(2)
	if h.Data()[2] != 0 || h.Data()[3] != 0 {
		t.Fatalf("grow within capacity left stale values: %v", h.Data())
	}
}

func TestFrameRowViewsList(t *testing.T) {
	f := NewFrame(3, 1)
	for i := 0; i < 3; i++ {
		f.SetRow(i, []float64{float64(i + 1)})
	}
	var buf [][]float64
	rows := f.RowViews(buf)
	if len(rows) != 3 {
		t.Fatalf("RowViews returned %d rows", len(rows))
	}
	for i, r := range rows {
		if len(r) != 1 || r[0] != float64(i+1) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	rows[2][0] = 42
	if f.Data()[2] != 42 {
		t.Fatal("RowViews rows do not alias the backing")
	}
	// Reuse: passing the previous slice back must not allocate a new header
	// array when capacity suffices.
	again := f.RowViews(rows)
	if &again[0][0] != &f.Data()[0] {
		t.Fatal("reused RowViews lost aliasing")
	}
}

func TestFramePanicsOnBadIndex(t *testing.T) {
	f := NewFrame(2, 2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Row(-1)", func() { f.Row(-1) })
	mustPanic("Row(2)", func() { f.Row(2) })
	mustPanic("SetRow short", func() { f.SetRow(0, []float64{1}) })
	mustPanic("NewFrame negative", func() { NewFrame(-1, 2) })
}
