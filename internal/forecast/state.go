package forecast

import (
	"fmt"
	"time"

	"orcf/internal/parallel"
)

// EnsembleState is the serializable state of an Ensemble. It deliberately
// carries no model weights: every Model's Fit is a pure function of the
// series it is given (the LSTM rebuilds its network from its seed on each
// Fit), so the models are reconstructed bit-identically on restore by
// refitting on the history up to the last (re)training step and replaying
// the per-step Updates that followed it. That keeps the format independent
// of which model family is configured — persisting an ARIMA ensemble and an
// LSTM ensemble takes the same bytes-per-step, and a zoo adds only the
// compact selection bookkeeping below.
type EnsembleState struct {
	// T is the number of observed steps.
	T int
	// Ready records whether initial training had completed.
	Ready bool
	// LastRefit is the step index of the most recent (re)training.
	LastRefit int
	// Series is the retained centroid history, indexed
	// [cluster][dim][t − SeriesStart].
	Series [][][]float64
	// TrainTime and TrainRuns carry the cumulative training accounting.
	TrainTime time.Duration
	// TrainRuns is the number of completed (re)training rounds.
	TrainRuns int
	// SeriesStart is the logical step index of Series[j][d][0]: with a
	// FitWindow the ensemble trims the prefix no future fit can read, so the
	// retained series covers steps [SeriesStart, T). Zero in states exported
	// before trimming existed, which restores the old full-history behavior.
	SeriesStart int

	// Zoo-mode selection state; all empty/zero in single-family mode.

	// Families lists the candidate family names in zoo order; restore
	// requires an exact match with the restoring ensemble's candidates.
	Families []string
	// Champions holds the per-(cluster, dim) champion candidate index,
	// flattened [cluster·Dims + dim].
	Champions []int
	// Streaks holds the per-cell, per-candidate consecutive-win counters,
	// flattened [(cluster·Dims + dim)·len(Families) + candidate].
	Streaks []int
	// Switches holds the per-cell champion promotion counts.
	Switches []int
	// SwitchTotal is the lifetime promotion count across all cells.
	SwitchTotal int
	// AccErrs holds each (cell, candidate) triple's windowed one-step errors
	// in chronological (oldest-first) order, indexed like Streaks.
	AccErrs [][]float64
	// AccEvals holds the matching lifetime evaluation counts.
	AccEvals []int64
}

// ExportState deep-copies the ensemble's mutable state; the result shares no
// memory with the live ensemble. The cached 1-step scoring forecasts are not
// exported — they are recomputed from the restored models, which Forecast
// purity makes bit-identical.
func (e *Ensemble) ExportState() *EnsembleState {
	st := &EnsembleState{
		T:           e.t,
		Ready:       e.ready,
		LastRefit:   e.lastrefits,
		TrainTime:   e.trainTime,
		TrainRuns:   e.trainRuns,
		SeriesStart: e.start,
	}
	st.Series = make([][][]float64, len(e.series))
	for j, byDim := range e.series {
		st.Series[j] = make([][]float64, len(byDim))
		for d, series := range byDim {
			st.Series[j][d] = append([]float64(nil), series...)
		}
	}
	if e.zoo {
		st.Families = append([]string(nil), e.names...)
		st.Champions = append([]int(nil), e.sel.champ...)
		st.Streaks = append([]int(nil), e.sel.streak...)
		st.Switches = append([]int(nil), e.sel.switches...)
		st.SwitchTotal = e.sel.total
		nc := len(e.names)
		cells := e.cfg.Clusters * e.cfg.Dims
		st.AccErrs = make([][]float64, cells*nc)
		st.AccEvals = make([]int64, cells*nc)
		for j := 0; j < e.cfg.Clusters; j++ {
			for d := 0; d < e.cfg.Dims; d++ {
				for c := 0; c < nc; c++ {
					i := (j*e.cfg.Dims+d)*nc + c
					st.AccErrs[i] = e.acc.Window(j, d, c)
					st.AccEvals[i] = e.acc.Evals(j, d, c)
				}
			}
		}
	}
	return st
}

// RestoreState replaces a freshly constructed ensemble's state with an
// exported one and reconstructs every model deterministically: each model is
// refit on its series truncated to the last training step (honoring
// FitWindow exactly as the live refit did), then fed the observations that
// arrived after it via Update. In zoo mode the selection state (champions,
// streaks, switch counts, accuracy windows) is restored verbatim and the
// 1-step scoring forecasts are recomputed, so selection resumes
// bit-identically mid-streak. The ensemble must not have observed any step
// yet. Fits run on the configured worker pool; the refit does not count
// toward the restored TrainTime/TrainRuns accounting.
func (e *Ensemble) RestoreState(st *EnsembleState) error {
	if e.t != 0 {
		return fmt.Errorf("forecast: restore into ensemble with %d steps: %w", e.t, ErrBadInput)
	}
	if st == nil {
		return fmt.Errorf("forecast: nil ensemble state: %w", ErrBadInput)
	}
	if st.T < 0 || st.LastRefit < 0 || st.LastRefit > st.T || st.TrainRuns < 0 {
		return fmt.Errorf("forecast: state counters T=%d lastRefit=%d runs=%d: %w",
			st.T, st.LastRefit, st.TrainRuns, ErrBadInput)
	}
	if st.Ready && st.LastRefit == 0 {
		return fmt.Errorf("forecast: ready state without a training step: %w", ErrBadInput)
	}
	if st.SeriesStart < 0 {
		return fmt.Errorf("forecast: negative series start %d: %w", st.SeriesStart, ErrBadInput)
	}
	if st.SeriesStart > 0 {
		if !st.Ready || e.cfg.FitWindow <= 0 {
			return fmt.Errorf("forecast: trimmed series (start %d) without ready state and fit window: %w",
				st.SeriesStart, ErrBadInput)
		}
		if keep := st.LastRefit - e.cfg.FitWindow; st.SeriesStart > keep {
			return fmt.Errorf("forecast: series start %d past last-refit fit window start %d: %w",
				st.SeriesStart, keep, ErrBadInput)
		}
	}
	if len(st.Series) != e.cfg.Clusters {
		return fmt.Errorf("forecast: %d series, want %d clusters: %w",
			len(st.Series), e.cfg.Clusters, ErrBadInput)
	}
	retained := st.T - st.SeriesStart
	for j, byDim := range st.Series {
		if len(byDim) != e.cfg.Dims {
			return fmt.Errorf("forecast: cluster %d has %d dims, want %d: %w",
				j, len(byDim), e.cfg.Dims, ErrBadInput)
		}
		for d, series := range byDim {
			if len(series) != retained {
				return fmt.Errorf("forecast: series (%d,%d) has %d values, want %d: %w",
					j, d, len(series), retained, ErrBadInput)
			}
		}
	}
	if err := e.validateSelectionState(st); err != nil {
		return err
	}

	for j, byDim := range st.Series {
		for d, series := range byDim {
			e.series[j][d] = append([]float64(nil), series...)
		}
	}
	e.t = st.T
	e.ready = st.Ready
	e.lastrefits = st.LastRefit
	e.trainTime = st.TrainTime
	e.trainRuns = st.TrainRuns
	e.start = st.SeriesStart
	if e.zoo {
		copy(e.sel.champ, st.Champions)
		copy(e.sel.streak, st.Streaks)
		copy(e.sel.switches, st.Switches)
		e.sel.total = st.SwitchTotal
		nc := len(e.names)
		for j := 0; j < e.cfg.Clusters; j++ {
			for d := 0; d < e.cfg.Dims; d++ {
				for c := 0; c < nc; c++ {
					i := (j*e.cfg.Dims+d)*nc + c
					if err := e.acc.restoreCell(j, d, c, st.AccErrs[i], st.AccEvals[i]); err != nil {
						return err
					}
				}
			}
		}
	}

	if !st.Ready {
		return nil
	}
	dims := e.cfg.Dims
	cells := e.cfg.Clusters * dims
	refitLen := st.LastRefit - st.SeriesStart
	err := parallel.ForEach(e.cfg.Workers, len(e.models)*cells, func(i int) error {
		c, r := i/cells, i%cells
		j, d := r/dims, r%dims
		s := e.series[j][d][:refitLen]
		if e.cfg.FitWindow > 0 && len(s) > e.cfg.FitWindow {
			s = s[len(s)-e.cfg.FitWindow:]
		}
		if err := e.models[c][j][d].Fit(s); err != nil {
			return fmt.Errorf("forecast: restoring %s cluster %d dim %d: %w", e.names[c], j, d, err)
		}
		for _, v := range e.series[j][d][refitLen:] {
			e.models[c][j][d].Update(v)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if e.zoo {
		return e.refreshPred()
	}
	return nil
}

// validateSelectionState checks the shape and candidate-roster agreement of
// the zoo selection fields before any mutation.
func (e *Ensemble) validateSelectionState(st *EnsembleState) error {
	if !e.zoo {
		if len(st.Families) != 0 {
			return fmt.Errorf("forecast: zoo state (%d families) for single-family ensemble: %w",
				len(st.Families), ErrBadInput)
		}
		return nil
	}
	if len(st.Families) != len(e.names) {
		return fmt.Errorf("forecast: state has %d families, ensemble has %d: %w",
			len(st.Families), len(e.names), ErrBadInput)
	}
	for i, name := range st.Families {
		if name != e.names[i] {
			return fmt.Errorf("forecast: state family %d is %q, ensemble has %q: %w",
				i, name, e.names[i], ErrBadInput)
		}
	}
	nc := len(e.names)
	cells := e.cfg.Clusters * e.cfg.Dims
	if len(st.Champions) != cells || len(st.Switches) != cells {
		return fmt.Errorf("forecast: selection state for %d/%d cells, want %d: %w",
			len(st.Champions), len(st.Switches), cells, ErrBadInput)
	}
	if len(st.Streaks) != cells*nc || len(st.AccErrs) != cells*nc || len(st.AccEvals) != cells*nc {
		return fmt.Errorf("forecast: per-candidate selection state %d/%d/%d entries, want %d: %w",
			len(st.Streaks), len(st.AccErrs), len(st.AccEvals), cells*nc, ErrBadInput)
	}
	if st.SwitchTotal < 0 {
		return fmt.Errorf("forecast: negative switch total %d: %w", st.SwitchTotal, ErrBadInput)
	}
	for i, champ := range st.Champions {
		if champ < 0 || champ >= nc {
			return fmt.Errorf("forecast: cell %d champion index %d outside [0,%d): %w",
				i, champ, nc, ErrBadInput)
		}
	}
	for i, s := range st.Streaks {
		if s < 0 {
			return fmt.Errorf("forecast: negative streak %d at %d: %w", s, i, ErrBadInput)
		}
	}
	for i, s := range st.Switches {
		if s < 0 {
			return fmt.Errorf("forecast: negative switch count %d at cell %d: %w", s, i, ErrBadInput)
		}
	}
	return nil
}
