package mat

import "fmt"

// Frame is a struct-of-arrays dense N×d float64 frame: one flat row-major
// backing array with zero-copy row views. It is the hot-loop layout of the
// pipeline — K-means scratch, the cluster tracker's presence-masked packing,
// and core.System's step staging all read and write through a Frame so the
// innermost distance and copy loops walk contiguous memory instead of
// chasing [][]float64 row pointers.
//
// Unlike Dense (whose Row returns a copy), Frame.Row returns a view:
// mutations through a row view are visible in Data and vice versa. A Frame
// is not safe for concurrent mutation.
type Frame struct {
	rows, cols int
	data       []float64
}

// NewFrame returns a zeroed rows×cols frame.
func NewFrame(rows, cols int) *Frame {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative frame dimension %d×%d", rows, cols))
	}
	return &Frame{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Rows returns the number of rows.
func (f *Frame) Rows() int { return f.rows }

// Cols returns the number of columns.
func (f *Frame) Cols() int { return f.cols }

// Data returns the flat row-major backing array (length Rows·Cols). Writes
// through it are visible to row views and vice versa.
func (f *Frame) Data() []float64 { return f.data }

// Row returns a capacity-clamped zero-copy view of row i: appending to the
// view can never bleed into the next row.
func (f *Frame) Row(i int) []float64 {
	if i < 0 || i >= f.rows {
		panic(fmt.Sprintf("mat: frame row %d out of bounds for %d×%d", i, f.rows, f.cols))
	}
	return f.data[i*f.cols : (i+1)*f.cols : (i+1)*f.cols]
}

// SetRow copies v into row i; v must have exactly Cols values.
func (f *Frame) SetRow(i int, v []float64) {
	if len(v) != f.cols {
		panic(fmt.Sprintf("mat: frame SetRow length %d != cols %d", len(v), f.cols))
	}
	copy(f.data[i*f.cols:(i+1)*f.cols], v)
}

// RowViews appends a view of every row to dst[:0] and returns it, reusing
// dst's backing array when it is large enough. The views alias the frame's
// data; they are invalidated by Grow.
func (f *Frame) RowViews(dst [][]float64) [][]float64 {
	dst = dst[:0]
	for i := 0; i < f.rows; i++ {
		dst = append(dst, f.Row(i))
	}
	return dst
}

// Grow extends the frame to at least rows rows in place, preserving existing
// values and zeroing the new rows. Growing may reallocate the backing array,
// which invalidates previously taken Data slices and row views — callers
// must re-take them. Shrinking is not supported (rows below Rows is a no-op).
func (f *Frame) Grow(rows int) {
	if rows <= f.rows {
		return
	}
	need := rows * f.cols
	if cap(f.data) >= need {
		old := len(f.data)
		f.data = f.data[:need]
		clear(f.data[old:])
	} else {
		nd := make([]float64, need)
		copy(nd, f.data)
		f.data = nd
	}
	f.rows = rows
}
