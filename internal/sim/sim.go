// Package sim drives a core.System over a trace.Dataset and scores it
// against ground truth: RMSE per forecast horizon (eqs. 3–4), the h=0
// transmission-only error, the intermediate clustering RMSE of §VI-C, and
// realized transmission frequencies. The evaluator can see the future (it
// holds the whole trace); the system under test cannot.
package sim

import (
	"errors"
	"fmt"
	"math"

	"orcf/internal/core"
	"orcf/internal/metrics"
	"orcf/internal/trace"
)

// ErrBadConfig reports invalid runner options.
var ErrBadConfig = errors.New("sim: invalid configuration")

// Config controls a simulation run.
type Config struct {
	// Horizons lists the forecast steps h ≥ 1 to score (e.g. 1, 5, 25, 50).
	// Empty means no forecasting evaluation (collection-only run).
	Horizons []int
	// ForecastEvery throttles how often forecasts are produced and scored
	// once the system is ready (1 = every step). Zero means 1.
	ForecastEvery int
	// ScoreIntermediate enables the §VI-C intermediate clustering RMSE.
	ScoreIntermediate bool
	// MaxSteps truncates the run (0 = whole dataset).
	MaxSteps int
}

func (c Config) withDefaults() Config {
	if c.ForecastEvery == 0 {
		c.ForecastEvery = 1
	}
	return c
}

// ResourceResult aggregates scores for one resource dimension.
type ResourceResult struct {
	// Resource names the dimension (e.g. "cpu").
	Resource string
	// Horizon holds time-averaged RMSE per scored horizon; index 0 is the
	// h=0 transmission-only error.
	Horizon *metrics.HorizonSet
	// Intermediate is the time-averaged intermediate RMSE (if enabled).
	Intermediate metrics.Accumulator
}

// Result is the outcome of one run.
type Result struct {
	// PerResource holds one entry per resource dimension.
	PerResource []ResourceResult
	// MeanFrequency is the average realized transmission frequency.
	MeanFrequency float64
	// Steps is the number of simulated steps.
	Steps int
	// ForecastsScored counts forecast evaluations.
	ForecastsScored int
}

// RMSEAt returns the time-averaged RMSE at horizon h for a resource.
func (r *Result) RMSEAt(resource, h int) float64 {
	if resource < 0 || resource >= len(r.PerResource) {
		return 0
	}
	return r.PerResource[resource].Horizon.At(h)
}

// Run drives the system over the dataset.
func Run(sys *core.System, ds *trace.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if sys == nil || ds == nil {
		return nil, fmt.Errorf("sim: nil system or dataset: %w", ErrBadConfig)
	}
	maxH := 0
	for _, h := range cfg.Horizons {
		if h < 1 {
			return nil, fmt.Errorf("sim: horizon %d < 1: %w", h, ErrBadConfig)
		}
		if h > maxH {
			maxH = h
		}
	}
	steps := ds.Steps()
	if cfg.MaxSteps > 0 && cfg.MaxSteps < steps {
		steps = cfg.MaxSteps
	}
	nRes := ds.NumResources()

	res := &Result{PerResource: make([]ResourceResult, nRes)}
	for r := 0; r < nRes; r++ {
		hs, err := metrics.NewHorizonSet(maxH)
		if err != nil {
			return nil, fmt.Errorf("sim: horizon set: %w", err)
		}
		res.PerResource[r] = ResourceResult{Resource: ds.Resources[r], Horizon: hs}
	}

	for t := 1; t <= steps; t++ {
		x := ds.Data[t-1]
		stepRes, err := sys.Step(x)
		if err != nil {
			return nil, fmt.Errorf("sim: step %d: %w", t, err)
		}

		// h=0 error: stored vs true, per resource.
		z := sys.Stored()
		for r := 0; r < nRes; r++ {
			var sq float64
			for i := range x {
				d := z[i][r] - x[i][r]
				sq += d * d
			}
			if err := res.PerResource[r].Horizon.Add(0, sqrtMean(sq, len(x))); err != nil {
				return nil, err
			}
		}

		// Intermediate clustering RMSE per resource.
		if cfg.ScoreIntermediate {
			if err := scoreIntermediate(res, stepRes, x); err != nil {
				return nil, fmt.Errorf("sim: step %d: %w", t, err)
			}
		}

		// Forecast scoring.
		if maxH > 0 && sys.Ready() && t%cfg.ForecastEvery == 0 && t+1 <= steps {
			f, err := sys.Forecast(min(maxH, steps-t))
			if err != nil {
				return nil, fmt.Errorf("sim: forecast at %d: %w", t, err)
			}
			for _, h := range cfg.Horizons {
				if t+h > steps {
					continue
				}
				truth := ds.Data[t+h-1]
				pred := f[h-1]
				for r := 0; r < nRes; r++ {
					var sq float64
					for i := range truth {
						d := pred[i][r] - truth[i][r]
						sq += d * d
					}
					if err := res.PerResource[r].Horizon.Add(h, sqrtMean(sq, len(truth))); err != nil {
						return nil, err
					}
				}
			}
			res.ForecastsScored++
		}
		res.Steps = t
	}
	res.MeanFrequency = sys.MeanFrequency()
	return res, nil
}

// scoreIntermediate adds the per-resource intermediate RMSE for one step.
// With scalar clustering there is one tracker per resource; with joint
// clustering the single tracker's centroids carry all dimensions.
func scoreIntermediate(res *Result, stepRes *core.StepResult, x [][]float64) error {
	nRes := len(res.PerResource)
	joint := len(stepRes.PerResource) == 1 && nRes > 1
	for r := 0; r < nRes; r++ {
		tr := r
		dim := 0
		if joint {
			tr = 0
			dim = r
		}
		ps := stepRes.PerResource[tr]
		var sq float64
		for i := range x {
			c := ps.Centroids[ps.Assignments[i]]
			d := c[dim] - x[i][r]
			sq += d * d
		}
		res.PerResource[r].Intermediate.AddSquared(sq / float64(len(x)))
	}
	return nil
}

func sqrtMean(sumSq float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(sumSq / float64(n))
}
