package trace

import (
	"bytes"
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestCSVRoundTripProperty: any generated dataset survives the CSV codec
// bit-exactly, for arbitrary shapes, resource counts, and quantization.
func TestCSVRoundTripProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
		cfg := GeneratorConfig{
			Nodes:     1 + rng.IntN(12),
			Steps:     1 + rng.IntN(20),
			Resources: 1 + rng.IntN(3),
			Quantum:   -1, // full float precision round trip
			Seed:      seed,
		}
		d, err := Generate(cfg)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := SaveCSV(&buf, d); err != nil {
			return false
		}
		got, err := LoadCSV(&buf, d.Name)
		if err != nil {
			return false
		}
		if got.Nodes() != d.Nodes() || got.Steps() != d.Steps() ||
			got.NumResources() != d.NumResources() {
			return false
		}
		for step := range d.Data {
			for i := range d.Data[step] {
				for r := range d.Data[step][i] {
					if got.Data[step][i][r] != d.Data[step][i][r] {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: mrand.New(mrand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
