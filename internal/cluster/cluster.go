// Package cluster implements §V-B of the paper: dynamic construction of K
// clusters over time from the measurements stored at the central node.
//
// Each time step the tracker runs K-means on the latest stored measurements,
// then re-indexes the resulting clusters against recent history by solving a
// maximum-weight bipartite matching on a cluster-similarity measure, so that
// cluster j at time t is the continuation of cluster j at time t−1. The
// matched centroids form K coherent time series that the forecasting layer
// (§V-C) trains on.
//
// The package also provides the two clustering baselines evaluated in the
// paper: offline static clustering (K-means on whole per-node series) and the
// minimum-distance baseline (K random nodes as centroids each step).
package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"orcf/internal/hungarian"
	"orcf/internal/kmeans"
)

// ErrBadConfig reports an invalid tracker configuration.
var ErrBadConfig = errors.New("cluster: invalid configuration")

// ErrBadInput reports invalid points passed to an update.
var ErrBadInput = errors.New("cluster: invalid input")

// Similarity selects the cluster-matching similarity measure.
type Similarity int

const (
	// SimilarityProposed is the paper's measure, eq. (10): the unnormalized
	// size of the intersection between a fresh cluster and the set of nodes
	// that stayed in stable cluster j throughout the last M steps.
	SimilarityProposed Similarity = iota + 1
	// SimilarityJaccard is the normalized Jaccard index used by Greene et
	// al. [20], compared against in Fig. 11.
	SimilarityJaccard
)

// String implements fmt.Stringer.
func (s Similarity) String() string {
	switch s {
	case SimilarityProposed:
		return "proposed"
	case SimilarityJaccard:
		return "jaccard"
	default:
		return fmt.Sprintf("Similarity(%d)", int(s))
	}
}

// Config parameterizes a Tracker.
type Config struct {
	// K is the number of clusters (and forecasting models). Required.
	K int
	// M is the similarity look-back in time steps, eq. (10). Zero means the
	// paper default of 1.
	M int
	// Similarity selects the matching measure. Zero means SimilarityProposed.
	Similarity Similarity
	// HistoryDepth is how many past assignment vectors the tracker retains
	// (≥ M). The membership-forecast window M′ of §V-C reads from this
	// history, so it must cover max(M, M′+1). Zero means max(M, 8).
	HistoryDepth int
	// KMeansIterations bounds Lloyd iterations per step. Zero means 50.
	KMeansIterations int
	// DisableMatching skips the Hungarian re-indexing step, leaving the raw
	// (arbitrary) K-means cluster order of each step. Only for ablation:
	// without matching the centroid "series" mix different clusters over
	// time and forecasting on them degrades, which is the justification for
	// §V-B's re-indexing.
	DisableMatching bool
}

func (c Config) withDefaults() Config {
	if c.M == 0 {
		c.M = 1
	}
	if c.Similarity == 0 {
		c.Similarity = SimilarityProposed
	}
	if c.HistoryDepth < c.M {
		if c.HistoryDepth == 0 {
			c.HistoryDepth = max(c.M, 8)
		} else {
			c.HistoryDepth = c.M
		}
	}
	return c
}

func (c Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("cluster: K = %d: %w", c.K, ErrBadConfig)
	}
	if c.M < 1 {
		return fmt.Errorf("cluster: M = %d: %w", c.M, ErrBadConfig)
	}
	if c.Similarity != SimilarityProposed && c.Similarity != SimilarityJaccard {
		return fmt.Errorf("cluster: unknown similarity %d: %w", int(c.Similarity), ErrBadConfig)
	}
	return nil
}

// Step is the clustering outcome for one time step.
type Step struct {
	// T is the 1-based time step index.
	T int
	// Assignments maps node index → stable cluster index in [0,K).
	Assignments []int
	// Centroids holds the K stable-cluster centroids (eq. 1): the mean of
	// the member measurements.
	Centroids [][]float64
}

// Tracker maintains the evolving clustering.
//
// Slots vs nodes: the tracker addresses points positionally by "slot". A
// fixed fleet uses slot == node index; an elastic fleet (core.System with
// membership churn) keeps slots stable across joins and leaves by passing a
// presence mask to UpdateMasked — absent slots carry assignment -1 and take
// no part in K-means or the eq. (10) matching. The slot count may grow
// between updates (new joiners are appended) but never shrink; departed
// slots are masked out and their history erased with ForgetSlot.
type Tracker struct {
	cfg  Config
	rng  *rand.Rand
	t    int
	dim  int
	n    int
	hist [][]int // ring of past assignments, hist[0] most recent; -1 = absent
	// centroidSeries[j][dim] is the full centroid history for stable
	// cluster j and one dimension; indexed [j][d][t].
	centroidSeries [][][]float64

	// Reusable packing buffers for masked updates: present points are
	// compacted for K-means and the packed assignments scattered back.
	packed  [][]float64
	packIdx []int
}

// NewTracker builds a Tracker. The rng drives K-means seeding; passing the
// same seed and inputs reproduces identical cluster evolutions.
func NewTracker(cfg Config, rng *rand.Rand) (*Tracker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("cluster: nil rng: %w", ErrBadConfig)
	}
	return &Tracker{cfg: cfg, rng: rng}, nil
}

// K returns the configured number of clusters.
func (tr *Tracker) K() int { return tr.cfg.K }

// Steps returns the number of updates processed so far.
func (tr *Tracker) Steps() int { return tr.t }

// Update ingests the N current stored measurements (N×d, d ≥ 1) and returns
// the re-indexed clustering for this step. It is UpdateMasked with every
// slot present: the slot count and dimension must stay constant across
// updates, and N must be ≥ K.
func (tr *Tracker) Update(points [][]float64) (*Step, error) {
	return tr.UpdateMasked(points, nil)
}

// UpdateMasked is Update for an elastic fleet: present[i] marks the slots
// that currently hold a live, stored measurement. Absent slots (and their
// points, which may be nil) are excluded from K-means, the eq. (10)
// matching, and the centroid means; they come back with assignment -1. The
// present count must be ≥ K. A nil mask means all slots are present. The
// slot count may grow between calls (joiners append) but never shrink.
func (tr *Tracker) UpdateMasked(points [][]float64, present []bool) (*Step, error) {
	if err := tr.checkPoints(points, present); err != nil {
		return nil, err
	}
	packed, packIdx := tr.pack(points, present)
	res, err := kmeans.Run(packed, kmeans.Config{
		K:             tr.cfg.K,
		MaxIterations: tr.cfg.KMeansIterations,
	}, tr.rng)
	if err != nil {
		return nil, fmt.Errorf("cluster: kmeans failed: %w", err)
	}

	// Scatter the packed assignments back onto the slot layout; absent
	// slots stay -1.
	raw := make([]int, len(points))
	for i := range raw {
		raw[i] = -1
	}
	for pi, slot := range packIdx {
		raw[slot] = res.Assignments[pi]
	}

	stable := raw
	if tr.t > 0 && !tr.cfg.DisableMatching {
		mapping, err := tr.matchToHistory(raw)
		if err != nil {
			return nil, err
		}
		stable = make([]int, len(raw))
		for i, k := range raw {
			if k < 0 {
				stable[i] = -1
				continue
			}
			stable[i] = mapping[k]
		}
	}
	cents := CentroidsFor(stable, tr.cfg.K, points)

	tr.t++
	tr.pushHistory(stable)
	tr.appendCentroids(cents)

	assignCopy := make([]int, len(stable))
	copy(assignCopy, stable)
	return &Step{T: tr.t, Assignments: assignCopy, Centroids: cents}, nil
}

func (tr *Tracker) checkPoints(points [][]float64, present []bool) error {
	if len(points) == 0 {
		return fmt.Errorf("cluster: no points: %w", ErrBadInput)
	}
	if present != nil && len(present) != len(points) {
		return fmt.Errorf("cluster: %d mask entries for %d points: %w",
			len(present), len(points), ErrBadInput)
	}
	n := 0
	for i, p := range points {
		if present != nil && !present[i] {
			continue
		}
		n++
		if p == nil {
			return fmt.Errorf("cluster: present slot %d has nil point: %w", i, ErrBadInput)
		}
		if tr.dim == 0 {
			tr.dim = len(p)
		}
		if len(p) != tr.dim {
			return fmt.Errorf("cluster: point %d has dim %d, want %d: %w", i, len(p), tr.dim, ErrBadInput)
		}
	}
	if n < tr.cfg.K {
		return fmt.Errorf("cluster: %d present points < K=%d: %w", n, tr.cfg.K, ErrBadInput)
	}
	if len(points) < tr.n {
		return fmt.Errorf("cluster: slot count shrank %d → %d: %w", tr.n, len(points), ErrBadInput)
	}
	tr.n = len(points)
	return nil
}

// pack compacts the present points for K-means, reusing the tracker's
// buffers; packIdx maps packed index → slot.
func (tr *Tracker) pack(points [][]float64, present []bool) ([][]float64, []int) {
	if present == nil {
		return points, tr.identity(len(points))
	}
	tr.packed = tr.packed[:0]
	tr.packIdx = tr.packIdx[:0]
	for i, p := range points {
		if present[i] {
			tr.packed = append(tr.packed, p)
			tr.packIdx = append(tr.packIdx, i)
		}
	}
	return tr.packed, tr.packIdx
}

// identity returns the 0..n-1 slot mapping, reusing the pack buffer.
func (tr *Tracker) identity(n int) []int {
	tr.packIdx = tr.packIdx[:0]
	for i := 0; i < n; i++ {
		tr.packIdx = append(tr.packIdx, i)
	}
	return tr.packIdx
}

// histAt reads a past assignment for a slot, treating vectors that predate
// the slot (recorded before the fleet grew to include it) as absent.
func (tr *Tracker) histAt(ago, slot int) int {
	h := tr.hist[ago]
	if slot >= len(h) {
		return -1
	}
	return h[slot]
}

// ForgetSlot erases a slot's retained assignment history, as if it had been
// absent at every remembered step. core.System calls it when a fleet member
// departs (and again when the slot is recycled for a new joiner), so a later
// occupant of the slot never inherits the old node's cluster continuity in
// the eq. (10) matching.
func (tr *Tracker) ForgetSlot(slot int) {
	if slot < 0 {
		return
	}
	for m := range tr.hist {
		if slot < len(tr.hist[m]) {
			tr.hist[m][slot] = -1
		}
	}
}

// matchToHistory computes the similarity matrix between fresh K-means
// clusters and stable clusters, then solves eq. (11) via maximum-weight
// matching. It returns mapping[k] = stable index j. Slots with raw
// assignment -1 (absent this step) contribute nothing; a slot that was
// absent at any of the last M steps has no core cluster, which realizes the
// eq. (10) intersection over a churning fleet.
func (tr *Tracker) matchToHistory(raw []int) ([]int, error) {
	k := tr.cfg.K
	lookback := min(tr.cfg.M, tr.t)

	// core[i] = stable cluster that slot i belonged to in *all* of the last
	// `lookback` steps, or −1. This realizes ⋂_{m=1..M} C_{j,t−m}.
	core := make([]int, len(raw))
	for i := range core {
		j := tr.histAt(0, i)
		for m := 1; m < lookback && j >= 0; m++ {
			if tr.histAt(m, i) != j {
				j = -1
			}
		}
		core[i] = j
	}

	inter := make([][]float64, k) // |C'_k ∩ X_j|
	for kk := range inter {
		inter[kk] = make([]float64, k)
	}
	rawSize := make([]float64, k)
	coreSize := make([]float64, k)
	for i, kk := range raw {
		if kk < 0 {
			continue // absent slot
		}
		rawSize[kk]++
		if j := core[i]; j >= 0 {
			coreSize[j]++
			inter[kk][j]++
		}
	}

	w := inter
	if tr.cfg.Similarity == SimilarityJaccard {
		w = make([][]float64, k)
		for kk := range w {
			w[kk] = make([]float64, k)
			for j := range w[kk] {
				union := rawSize[kk] + coreSize[j] - inter[kk][j]
				if union > 0 {
					w[kk][j] = inter[kk][j] / union
				}
			}
		}
	}

	mapping, _, err := hungarian.MaxWeightMatch(w)
	if err != nil {
		return nil, fmt.Errorf("cluster: matching failed: %w", err)
	}
	return mapping, nil
}

func (tr *Tracker) pushHistory(assign []int) {
	cp := make([]int, len(assign))
	copy(cp, assign)
	tr.hist = append([][]int{cp}, tr.hist...)
	if len(tr.hist) > tr.cfg.HistoryDepth {
		tr.hist = tr.hist[:tr.cfg.HistoryDepth]
	}
}

func (tr *Tracker) appendCentroids(cents [][]float64) {
	if tr.centroidSeries == nil {
		tr.centroidSeries = make([][][]float64, tr.cfg.K)
		for j := range tr.centroidSeries {
			tr.centroidSeries[j] = make([][]float64, tr.dim)
		}
	}
	for j := 0; j < tr.cfg.K; j++ {
		for d := 0; d < tr.dim; d++ {
			tr.centroidSeries[j][d] = append(tr.centroidSeries[j][d], cents[j][d])
		}
	}
}

// CentroidSeries returns the historical centroid values of stable cluster j
// along dimension d, one value per processed step. The returned slice is a
// copy.
func (tr *Tracker) CentroidSeries(j, d int) []float64 {
	if j < 0 || j >= tr.cfg.K || d < 0 || d >= tr.dim || tr.centroidSeries == nil {
		return nil
	}
	out := make([]float64, len(tr.centroidSeries[j][d]))
	copy(out, tr.centroidSeries[j][d])
	return out
}

// AssignmentsAgo returns the stable assignment vector from `ago` steps back
// (0 = most recent). It returns nil when the history does not reach that far.
func (tr *Tracker) AssignmentsAgo(ago int) []int {
	if ago < 0 || ago >= len(tr.hist) {
		return nil
	}
	out := make([]int, len(tr.hist[ago]))
	copy(out, tr.hist[ago])
	return out
}

// HistoryLen returns the number of retained assignment vectors.
func (tr *Tracker) HistoryLen() int { return len(tr.hist) }

// CentroidsFor computes eq. (1): the mean of the member points of each of the
// k clusters under the given assignment. Slots assigned -1 (absent members
// of an elastic fleet) are skipped. A cluster with no members gets a zero
// vector (callers using Tracker never observe this because K-means repairs
// empty clusters).
func CentroidsFor(assign []int, k int, points [][]float64) [][]float64 {
	if len(points) == 0 {
		return nil
	}
	d := 0
	for _, p := range points {
		if p != nil {
			d = len(p)
			break
		}
	}
	cents := make([][]float64, k)
	counts := make([]int, k)
	for j := range cents {
		cents[j] = make([]float64, d)
	}
	for i, p := range points {
		j := assign[i]
		if j < 0 {
			continue
		}
		counts[j]++
		for t, v := range p {
			cents[j][t] += v
		}
	}
	for j := range cents {
		if counts[j] == 0 {
			continue
		}
		inv := 1 / float64(counts[j])
		for t := range cents[j] {
			cents[j][t] *= inv
		}
	}
	return cents
}

// Static is the offline baseline: nodes are grouped once using their entire
// time series (known in advance), and the grouping never changes.
type Static struct {
	k      int
	assign []int
}

// NewStatic clusters the per-node whole series (series[i] is node i's full
// scalar time series, all equal length) into k fixed groups.
func NewStatic(series [][]float64, k int, rng *rand.Rand) (*Static, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: K = %d: %w", k, ErrBadConfig)
	}
	if len(series) < k {
		return nil, fmt.Errorf("cluster: %d series < K=%d: %w", len(series), k, ErrBadInput)
	}
	res, err := kmeans.Run(series, kmeans.Config{K: k}, rng)
	if err != nil {
		return nil, fmt.Errorf("cluster: static kmeans failed: %w", err)
	}
	assign := make([]int, len(res.Assignments))
	copy(assign, res.Assignments)
	return &Static{k: k, assign: assign}, nil
}

// Assignments returns the fixed node→cluster mapping.
func (s *Static) Assignments() []int {
	out := make([]int, len(s.assign))
	copy(out, s.assign)
	return out
}

// Step evaluates the static clustering against the current points: the
// assignment is fixed, the centroids are the current member means.
func (s *Static) Step(points [][]float64) *Step {
	return &Step{Assignments: s.Assignments(), Centroids: CentroidsFor(s.assign, s.k, points)}
}

// MinimumDistance is the baseline representing random-monitor approaches
// [6]–[10]: each step K distinct random nodes become "centroids" and every
// other node maps to the nearest of them (by current measurement distance).
type MinimumDistance struct {
	k   int
	rng *rand.Rand
}

// NewMinimumDistance builds the baseline with k random monitors per step.
func NewMinimumDistance(k int, rng *rand.Rand) (*MinimumDistance, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: K = %d: %w", k, ErrBadConfig)
	}
	if rng == nil {
		return nil, fmt.Errorf("cluster: nil rng: %w", ErrBadConfig)
	}
	return &MinimumDistance{k: k, rng: rng}, nil
}

// Step draws K fresh random monitor nodes and assigns every node to the
// closest monitor. The "centroid" of a cluster is the monitor's measurement
// itself, matching §VI-C2.
func (md *MinimumDistance) Step(points [][]float64) (*Step, error) {
	if len(points) < md.k {
		return nil, fmt.Errorf("cluster: %d points < K=%d: %w", len(points), md.k, ErrBadInput)
	}
	monitors := md.rng.Perm(len(points))[:md.k]
	cents := make([][]float64, md.k)
	for j, m := range monitors {
		c := make([]float64, len(points[m]))
		copy(c, points[m])
		cents[j] = c
	}
	assign := make([]int, len(points))
	for i, p := range points {
		assign[i] = kmeans.Nearest(p, cents)
	}
	return &Step{Assignments: assign, Centroids: cents}, nil
}

// WindowBuffer accumulates the last w point-sets and exposes the concatenated
// feature vectors used for temporal-dimension clustering (Fig. 5). With w=1
// the features equal the raw points, which the paper finds optimal.
type WindowBuffer struct {
	w   int
	buf [][][]float64 // buf[age][node][dim], age 0 most recent
}

// NewWindowBuffer creates a buffer of window length w ≥ 1.
func NewWindowBuffer(w int) (*WindowBuffer, error) {
	if w < 1 {
		return nil, fmt.Errorf("cluster: window %d < 1: %w", w, ErrBadConfig)
	}
	return &WindowBuffer{w: w}, nil
}

// Push appends the current point-set (N×d), evicting the oldest when full.
func (b *WindowBuffer) Push(points [][]float64) {
	cp := make([][]float64, len(points))
	for i, p := range points {
		cp[i] = append([]float64(nil), p...)
	}
	b.buf = append([][][]float64{cp}, b.buf...)
	if len(b.buf) > b.w {
		b.buf = b.buf[:b.w]
	}
}

// Ready reports whether a full window has been accumulated.
func (b *WindowBuffer) Ready() bool { return len(b.buf) == b.w }

// Features returns the N×(w·d) concatenated feature matrix, most recent
// measurements first. It returns nil until Ready.
func (b *WindowBuffer) Features() [][]float64 {
	if !b.Ready() {
		return nil
	}
	n := len(b.buf[0])
	d := len(b.buf[0][0])
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		f := make([]float64, 0, b.w*d)
		for age := 0; age < b.w; age++ {
			f = append(f, b.buf[age][i]...)
		}
		out[i] = f
	}
	return out
}
