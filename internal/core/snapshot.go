package core

import (
	"fmt"
	"time"

	"orcf/internal/forecast"
	"orcf/internal/parallel"
)

// Snapshot is an immutable, point-in-time view of the pipeline published at
// the end of a successful Step when Config.SnapshotHorizon > 0. It carries
// everything a query needs — the eq. (12) look-back window, the latest
// stored measurements z_t, cluster memberships and centroids, realized
// transmit frequencies, and per-tracker centroid forecasts precomputed up to
// the snapshot horizon — so readers never touch the System's mutable state:
// thousands of concurrent queries proceed lock-free while the ingest loop
// keeps stepping.
//
// Forecasts are pure functions of a Snapshot: two calls with the same
// horizon on the same Snapshot return identical values, and they are
// bit-identical to calling System.Forecast(h) at the step the Snapshot was
// published (both run the same reconstruction over the same window). That
// purity is what makes (Generation, horizon) a sound cache key for the
// serving plane.
type Snapshot struct {
	gen        uint64
	t          int
	ready      bool
	maxHorizon int

	// slots is the look-back window, newest first. Slots are immutable and
	// shared across consecutive Snapshots: each publish deep-copies only the
	// current step's slot and re-references the previous window's tail.
	slots []*ringSlot

	// centF holds per-tracker centroid forecasts [tracker][cluster][dim][hi]
	// for hi < maxHorizon; nil until the models finish initial training.
	centF [][][][]float64

	freq      []float64
	meanFreq  float64
	trainTime time.Duration
	trainRuns int

	// selection holds each tracker's zoo champion/challenger state at
	// publication (deep-copied, immutable); nil entries for single-family
	// systems.
	selection []*forecast.SelectionInfo

	roster    *Roster
	evictions uint64

	nodes, resources  int
	k, dims, nTracker int
	joint             bool
	disableClamp      bool
	disableAlphaClamp bool
}

// Snapshot returns the most recently published read-only view, or nil when
// publishing is disabled (Config.SnapshotHorizon == 0) or no step has
// completed yet. Safe to call concurrently with Step; the returned value
// never changes after publication.
func (s *System) Snapshot() *Snapshot { return s.snap.Load() }

// buildSnapshot assembles the next Snapshot from the staged (not yet
// committed) step state. It is called before the ring commit so a failed
// centroid-forecast pass leaves both the ring and the published view
// untouched. Step calls the two halves (assembleSnapshot, forecastSnapshot)
// directly so each gets its own phase timer; restore paths use this wrapper.
func (s *System) buildSnapshot() (*Snapshot, error) {
	snap := s.assembleSnapshot()
	if err := s.forecastSnapshot(snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// assembleSnapshot builds everything in the next Snapshot except the
// centroid forecasts: the look-back window, frequencies, roster, and
// dimensions. Deep copies come from the slot arena: with SnapshotKeep > 0
// the slots dropped from the published window are recycled once their
// retention expires, so steady-state publishing allocates no new windows.
func (s *System) assembleSnapshot() *Snapshot {
	s.dropPending = s.dropPending[:0]
	slot := s.arenaSlot()
	slot.copyFrom(&s.stage)

	window := min(s.ringLen+1, len(s.ring))
	slots := make([]*ringSlot, 0, window)
	slots = append(slots, slot)
	if s.pubWinStale {
		// A tombstoned slot was recycled since the last publish: the shared
		// tail still shows the previous occupant as present, so rebuild the
		// window from immutable copies of the live ring (whose presence was
		// masked at eviction). snapAt(k-1) is the state k steps before the
		// staged one, because the ring has not committed this step yet. The
		// entire previous window drops from publication.
		for k := 1; k < window; k++ {
			cp := s.arenaSlot()
			cp.copyFrom(s.snapAt(k - 1))
			slots = append(slots, cp)
		}
		if s.cfg.SnapshotKeep > 0 {
			s.dropPending = append(s.dropPending, s.pubWin...)
		}
	} else if prev := s.pubWin; len(prev) > 0 {
		kept := min(len(prev), window-1)
		slots = append(slots, prev[:kept]...)
		if s.cfg.SnapshotKeep > 0 {
			s.dropPending = append(s.dropPending, prev[kept:]...)
		}
	}

	snap := &Snapshot{
		gen:               s.gen + 1,
		t:                 s.t,
		ready:             s.Ready(),
		maxHorizon:        s.cfg.SnapshotHorizon,
		slots:             slots,
		freq:              make([]float64, len(s.ids)),
		roster:            s.roster(),
		evictions:         s.evictions,
		nodes:             len(s.ids),
		resources:         s.cfg.Resources,
		k:                 s.cfg.K,
		dims:              s.dims,
		nTracker:          s.nTrackers,
		joint:             s.cfg.JointClustering,
		disableClamp:      s.cfg.DisableClamp,
		disableAlphaClamp: s.cfg.DisableAlphaClamp,
	}
	var sum float64
	live := 0
	for i := range snap.freq {
		if !s.alive[i] {
			continue
		}
		live++
		snap.freq[i] = s.meters[i].Frequency()
		sum += snap.freq[i]
	}
	if live > 0 {
		snap.meanFreq = sum / float64(live)
	}
	snap.trainTime, snap.trainRuns = s.TrainingTime()
	if len(s.cfg.Zoo) > 0 {
		snap.selection = make([]*forecast.SelectionInfo, s.nTrackers)
		for tr := range snap.selection {
			snap.selection[tr] = s.ensembles[tr].Selection()
		}
	}
	return snap
}

// arenaSlot returns a window slot to deep-copy the next snapshot entry into:
// the oldest retiree whose retention has expired — grown in place to the
// current fleet size — or a fresh allocation when the arena is empty, still
// retained, or disabled (SnapshotKeep == 0). Retirement stamps are monotone,
// so checking the FIFO front suffices. The publish being assembled is
// generation s.gen+1; a slot dropped at generation r is safe to overwrite
// once s.gen+1 − r > SnapshotKeep, i.e. every reader entitled to a snapshot
// still sharing it has expired.
func (s *System) arenaSlot() *ringSlot {
	if keep := s.cfg.SnapshotKeep; keep > 0 && len(s.retired) > 0 {
		r := s.retired[0]
		if s.gen+1-r.gen > uint64(keep) {
			// Dequeue by shifting in place: the list stays ~SnapshotKeep
			// entries long, so this never reallocates in steady state.
			s.retired = s.retired[:copy(s.retired, s.retired[1:])]
			growSlot(r.slot, len(s.ids), s.nTrackers)
			return r.slot
		}
	}
	slot := s.newRingSlot()
	return &slot
}

// forecastSnapshot precomputes the per-tracker centroid forecasts up to the
// snapshot horizon (a no-op before the models finish initial training).
func (s *System) forecastSnapshot(snap *Snapshot) error {
	if !snap.ready {
		return nil
	}
	snap.centF = make([][][][]float64, s.nTrackers)
	return parallel.ForEach(s.cfg.Workers, s.nTrackers, func(tr int) error {
		f, err := s.ensembles[tr].Forecast(s.cfg.SnapshotHorizon)
		if err != nil {
			return fmt.Errorf("core: tracker %d snapshot forecast: %w", tr, err)
		}
		snap.centF[tr] = f
		return nil
	})
}

// Generation is the snapshot's monotonically increasing publication counter
// (one per successful Step). Forecasts are pure per generation, so it keys
// the serving plane's forecast cache.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Steps is the number of steps the system had processed at publication.
func (sn *Snapshot) Steps() int { return sn.t }

// Ready reports whether forecasting models were trained at publication.
func (sn *Snapshot) Ready() bool { return sn.ready }

// MaxHorizon is the largest horizon this snapshot can serve.
func (sn *Snapshot) MaxHorizon() int { return sn.maxHorizon }

// Nodes returns the dense slot count N at publication (live members plus
// tombstones); see Roster for membership.
func (sn *Snapshot) Nodes() int { return sn.nodes }

// Roster returns the immutable fleet membership at publication.
func (sn *Snapshot) Roster() *Roster { return sn.roster }

// LiveNodes returns the number of live members at publication.
func (sn *Snapshot) LiveNodes() int { return sn.roster.Live() }

// Evictions returns the lifetime departure count at publication.
func (sn *Snapshot) Evictions() uint64 { return sn.evictions }

// SlotOf returns the slot a live member occupied at publication.
func (sn *Snapshot) SlotOf(id int) (slot int, ok bool) { return sn.roster.SlotOf(id) }

// Present reports whether the slot's member took part in clustering at the
// snapshot's step (false for tombstones and joiners still warming up).
func (sn *Snapshot) Present(slot int) bool {
	if slot < 0 || slot >= sn.nodes {
		return false
	}
	return sn.slots[0].presentAt(slot)
}

// WindowFill returns how many of the snapshot's look-back slots the member
// was present at — eq. (12) forecasts become available at 1 and use the
// full window once it reaches the window length (len of the look-back).
func (sn *Snapshot) WindowFill(slot int) int {
	n := 0
	for _, s := range sn.slots {
		if s.presentAt(slot) {
			n++
		}
	}
	return n
}

// Resources returns the measurement dimensionality d.
func (sn *Snapshot) Resources() int { return sn.resources }

// Trackers returns the number of cluster trackers (d for scalar clustering,
// 1 for joint clustering).
func (sn *Snapshot) Trackers() int { return sn.nTracker }

// Clusters returns K.
func (sn *Snapshot) Clusters() int { return sn.k }

// Latest returns a copy of the central store's measurement for a slot (z_t
// row), or nil when the slot is out of range or held no stored measurement
// at the snapshot's step.
func (sn *Snapshot) Latest(node int) []float64 {
	if node < 0 || node >= sn.nodes || !sn.slots[0].presentAt(node) {
		return nil
	}
	return append([]float64(nil), sn.slots[0].z[node]...)
}

// Assignment returns the slot's cluster index under a tracker at the
// snapshot's step, or -1 when out of range or absent from clustering.
func (sn *Snapshot) Assignment(tracker, node int) int {
	if tracker < 0 || tracker >= sn.nTracker || node < 0 || node >= sn.nodes ||
		!sn.slots[0].presentAt(node) {
		return -1
	}
	return sn.slots[0].assignments[tracker][node]
}

// Frequency returns the node's realized transmission frequency (eq. 5), or
// 0 when out of range.
func (sn *Snapshot) Frequency(node int) float64 {
	if node < 0 || node >= len(sn.freq) {
		return 0
	}
	return sn.freq[node]
}

// MeanFrequency returns the average realized transmission frequency.
func (sn *Snapshot) MeanFrequency() float64 { return sn.meanFreq }

// Centroids returns a copy of a tracker's K centroids at the snapshot's
// step, or nil when the tracker is out of range.
func (sn *Snapshot) Centroids(tracker int) [][]float64 {
	if tracker < 0 || tracker >= sn.nTracker {
		return nil
	}
	out := newMatrix(sn.k, sn.dims)
	for j, c := range sn.slots[0].centroids[tracker] {
		copy(out[j], c)
	}
	return out
}

// CentroidForecasts returns a deep copy of a tracker's centroid forecasts at
// the snapshot's step, indexed [cluster][dim][horizon-1] for horizons
// 1..MaxHorizon. It returns nil when the tracker is out of range or the
// system has not completed initial training (check Ready). The alert plane
// reads cluster-scope rules through this accessor.
func (sn *Snapshot) CentroidForecasts(tracker int) [][][]float64 {
	if !sn.ready || tracker < 0 || tracker >= len(sn.centF) {
		return nil
	}
	src := sn.centF[tracker]
	out := make([][][]float64, len(src))
	for j, dims := range src {
		out[j] = make([][]float64, len(dims))
		for d, series := range dims {
			out[j][d] = append([]float64(nil), series...)
		}
	}
	return out
}

// ClusterSizes returns how many present slots each of a tracker's K clusters
// holds at the snapshot's step, or nil when the tracker is out of range.
func (sn *Snapshot) ClusterSizes(tracker int) []int {
	if tracker < 0 || tracker >= sn.nTracker {
		return nil
	}
	sizes := make([]int, sn.k)
	for node := 0; node < sn.nodes; node++ {
		if j := sn.Assignment(tracker, node); j >= 0 && j < sn.k {
			sizes[j]++
		}
	}
	return sizes
}

// TrainingTime returns the cumulative (re)training wall time and round count
// at publication.
func (sn *Snapshot) TrainingTime() (time.Duration, int) {
	return sn.trainTime, sn.trainRuns
}

// ModelSelection returns a tracker's zoo champion/challenger state at
// publication — per-(cluster, dim) champions, rolling accuracies, streaks,
// and switch counts — or nil for an out-of-range tracker or a single-family
// system. The returned value is immutable and shared by all callers.
func (sn *Snapshot) ModelSelection(tracker int) *forecast.SelectionInfo {
	if tracker < 0 || tracker >= len(sn.selection) {
		return nil
	}
	return sn.selection[tracker]
}

// ModelSwitchesTotal sums the lifetime champion promotions across all
// trackers at publication (0 for single-family systems).
func (sn *Snapshot) ModelSwitchesTotal() int {
	total := 0
	for _, sel := range sn.selection {
		if sel != nil {
			total += sel.SwitchTotal
		}
	}
	return total
}

// Forecast produces per-node forecasts for horizons 1..h from the snapshot
// alone: result[hIdx][node][resource]. Rows of tombstoned slots and of
// joiners with no presence in the look-back window yet are NaN (use Present
// / WindowFill to distinguish). It reads only immutable data, so any number
// of calls may run concurrently with each other and with the System's
// ingest loop. workers bounds the per-node fan-out (0 = GOMAXPROCS, 1 =
// serial); the result is identical for any value. It fails with ErrNotReady
// before initial training and ErrBadInput when h exceeds MaxHorizon.
func (sn *Snapshot) Forecast(h, workers int) ([][][]float64, error) {
	if h < 1 {
		return nil, fmt.Errorf("core: horizon %d < 1: %w", h, ErrBadInput)
	}
	if h > sn.maxHorizon {
		return nil, fmt.Errorf("core: horizon %d exceeds snapshot horizon %d: %w",
			h, sn.maxHorizon, ErrBadInput)
	}
	if !sn.ready {
		return nil, ErrNotReady
	}
	return reconstruct(sn.reconEnv(), sn.centF, h, workers)
}

func (sn *Snapshot) reconEnv() *reconEnv {
	return &reconEnv{
		slotAt: func(ago int) *ringSlot { return sn.slots[ago] },
		aliveAt: func(i int) bool {
			return i < len(sn.roster.alive) && sn.roster.alive[i]
		},
		window:            len(sn.slots),
		nodes:             sn.nodes,
		resources:         sn.resources,
		k:                 sn.k,
		dims:              sn.dims,
		nTracker:          sn.nTracker,
		joint:             sn.joint,
		disableClamp:      sn.disableClamp,
		disableAlphaClamp: sn.disableAlphaClamp,
	}
}
