package exp

import (
	"fmt"
	"math"
	"math/rand/v2"

	"orcf/internal/cluster"
	"orcf/internal/core"
	"orcf/internal/forecast"
	"orcf/internal/metrics"
	"orcf/internal/parallel"
	"orcf/internal/sim"
	"orcf/internal/trace"
)

// paperHorizons are the forecast steps scored in Figs. 9–11.
var paperHorizons = []int{1, 5, 10, 25, 50}

// modelBuilders returns the named forecasting model factories used across
// the forecasting experiments.
func (o Options) modelBuilders() map[string]forecast.Builder {
	return map[string]forecast.Builder{
		"ARIMA": func() forecast.Model { return forecast.NewAutoARIMA(o.Grid) },
		"LSTM": func() forecast.Model {
			return forecast.NewLSTM(forecast.LSTMConfig{
				Epochs: o.LSTMEpochs, FitWindow: o.FitWindow, Seed: o.Seed,
			})
		},
		"Sample-and-hold": func() forecast.Model { return forecast.NewSampleAndHold() },
	}
}

// runPipeline evaluates the full proposed pipeline on a dataset with the
// given model and K, scoring the paper horizons. workers bounds the system
// under test's own pool: call sites inside a sweep fan-out pass 1 so the
// sweep level alone owns the concurrency budget; top-level call sites pass
// o.Workers.
func (o Options) runPipeline(ds *trace.Dataset, k int, builder forecast.Builder, simCfg sim.Config, workers int) (*sim.Result, error) {
	sys, err := core.NewSystem(core.Config{
		Nodes:             ds.Nodes(),
		Resources:         ds.NumResources(),
		K:                 k,
		InitialCollection: o.Warmup,
		RetrainEvery:      retrainEvery,
		FitWindow:         o.FitWindow,
		Model:             builder,
		Seed:              o.Seed,
		Workers:           workers,
	})
	if err != nil {
		return nil, fmt.Errorf("exp: pipeline: %w", err)
	}
	return sim.Run(sys, ds, simCfg)
}

// Fig8 reproduces the instantaneous centroid-forecast trajectories: how well
// each model's h=5 forecast tracks the true centroid series of the K=3 CPU
// clusters on the Alibaba-like dataset. The table reports the tracking RMSE
// per centroid and model over the post-warmup window, which summarizes the
// visual claim of the figure ("forecasts follow the true centroids").
func Fig8(o Options) (*Table, error) {
	o = o.withDefaults()
	ds, err := o.dataset(trace.AlibabaLike())
	if err != nil {
		return nil, fmt.Errorf("exp: fig8: %w", err)
	}
	series, err := centroidSeries(ds, 0, 3, o.Seed) // CPU, K=3
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:  "Fig. 8 — Centroid tracking RMSE of h=5 forecasts (Alibaba CPU, K=3)",
		Header: []string{"model", "centroid 1", "centroid 2", "centroid 3"},
	}
	names := []string{"ARIMA", "LSTM", "Sample-and-hold"}
	builders := o.modelBuilders()
	for _, name := range names {
		row := []string{name}
		for j := 0; j < 3; j++ {
			rmse, err := trackCentroid(series[j], builders[name](), o, 5)
			if err != nil {
				return nil, fmt.Errorf("exp: fig8 %s centroid %d: %w", name, j, err)
			}
			row = append(row, f4(rmse))
		}
		tab.AddRow(row...)
	}
	return tab, nil
}

// centroidSeries runs collection (B=0.3) + dynamic clustering and returns
// the K centroid series for one resource.
func centroidSeries(ds *trace.Dataset, r, k int, seed uint64) ([][]float64, error) {
	zs, err := collectZ(ds, 0.3)
	if err != nil {
		return nil, err
	}
	tr, err := cluster.NewTracker(cluster.Config{K: k, M: 1}, rand.New(rand.NewPCG(seed, 53)))
	if err != nil {
		return nil, fmt.Errorf("exp: centroid series: %w", err)
	}
	for t := range zs {
		if _, err := tr.Update(scalarPoints(zs[t], r)); err != nil {
			return nil, fmt.Errorf("exp: centroid series step %d: %w", t, err)
		}
	}
	out := make([][]float64, k)
	for j := 0; j < k; j++ {
		out[j] = tr.CentroidSeries(j, 0)
	}
	return out, nil
}

// trackCentroid walks a centroid series with the paper's training schedule,
// forecasting h steps ahead at every step after warmup, and returns the RMSE
// between forecasts and realized values.
func trackCentroid(series []float64, model forecast.Model, o Options, h int) (float64, error) {
	if len(series) <= o.Warmup+h {
		return 0, fmt.Errorf("exp: series length %d too short for warmup %d: %w",
			len(series), o.Warmup, trace.ErrBadConfig)
	}
	var acc metrics.Accumulator
	lastFit := 0
	for t := 1; t <= len(series); t++ {
		y := series[t-1]
		switch {
		case t < o.Warmup:
			// still collecting
		case t == o.Warmup || (lastFit > 0 && t-lastFit >= retrainEvery):
			fitSlice := series[:t]
			if o.FitWindow > 0 && len(fitSlice) > o.FitWindow {
				fitSlice = fitSlice[len(fitSlice)-o.FitWindow:]
			}
			if err := model.Fit(fitSlice); err != nil {
				return 0, fmt.Errorf("exp: fit at %d: %w", t, err)
			}
			lastFit = t
		default:
			if lastFit > 0 {
				model.Update(y)
			}
		}
		if lastFit > 0 && t%5 == 0 && t+h <= len(series) {
			f, err := model.Forecast(h)
			if err != nil {
				return 0, fmt.Errorf("exp: forecast at %d: %w", t, err)
			}
			diff := f[h-1] - series[t+h-1]
			acc.AddSquared(diff * diff)
		}
	}
	return acc.Value(), nil
}

// Fig9 compares forecasting models on the full pipeline: time-averaged RMSE
// versus forecast step h for ARIMA, LSTM, sample-and-hold with K=3 and K=N,
// and the standard-deviation bound.
func Fig9(o Options) (*Table, error) {
	o = o.withDefaults()
	tab := &Table{
		Title: "Fig. 9 — Time-averaged RMSE vs forecast steps h (dynamic clustering)",
		Header: []string{"dataset", "resource", "h", "ARIMA", "LSTM",
			"S&H K=3", "S&H K=N", "StdDev"},
	}
	simCfg := sim.Config{Horizons: paperHorizons, ForecastEvery: o.ForecastEvery}
	builders := o.modelBuilders()
	presets := clusterPresets()
	datasets := make([]*trace.Dataset, len(presets))
	for pi, p := range presets {
		ds, err := o.dataset(p)
		if err != nil {
			return nil, fmt.Errorf("exp: fig9 %s: %w", p.Name, err)
		}
		datasets[pi] = ds
	}

	// Phase 1: the deterministic per-preset runs fan out over the preset ×
	// variant grid, each system running serially so the sweep level owns
	// the whole worker budget. k == 0 selects K = N for that dataset.
	variants := []struct {
		name string
		k    int
		b    forecast.Builder
	}{
		{"ARIMA", 3, builders["ARIMA"]},
		{"Sample-and-hold", 3, builders["Sample-and-hold"]},
		{"S&H K=N", 0, builders["Sample-and-hold"]},
	}
	jobs := len(variants)
	named, err := parallel.Map(o.Workers, len(presets)*jobs, func(idx int) (*sim.Result, error) {
		pi, v := idx/jobs, variants[idx%jobs]
		ds := datasets[pi]
		k := v.k
		if k == 0 {
			k = ds.Nodes()
		}
		res, err := o.runPipeline(ds, k, v.b, simCfg, 1)
		if err != nil {
			return nil, fmt.Errorf("exp: fig9 %s %s: %w", presets[pi].Name, v.name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: the LSTM seed averages, one preset at a time — each fans out
	// over its LSTMRuns seeds internally, so running the presets serially
	// here keeps total concurrency at the Workers bound instead of nesting.
	lstm := make([]map[int]map[int]float64, len(presets))
	for pi, p := range presets {
		mean, err := o.lstmAveragedRMSE(datasets[pi], simCfg)
		if err != nil {
			return nil, fmt.Errorf("exp: fig9 %s LSTM: %w", p.Name, err)
		}
		lstm[pi] = mean
	}

	for pi, p := range presets {
		ds := datasets[pi]
		arima, sh, shN := named[pi*jobs], named[pi*jobs+1], named[pi*jobs+2]
		for r := 0; r < ds.NumResources(); r++ {
			std := datasetStdDev(ds, r)
			for _, h := range paperHorizons {
				tab.AddRow(p.Name, resourceLabel(ds, r), itoa(h),
					f4(arima.RMSEAt(r, h)),
					f4(lstm[pi][r][h]),
					f4(sh.RMSEAt(r, h)),
					f4(shN.RMSEAt(r, h)),
					f4(std))
			}
		}
	}
	return tab, nil
}

// lstmAveragedRMSE runs the LSTM pipeline over LSTMRuns seeds and returns
// the mean RMSE indexed [resource][horizon]. The runs are independent (each
// seeds its own LSTM initializer) and execute on the worker pool; the mean
// is reduced in run order afterwards so the floating-point sum is identical
// to the serial path.
func (o Options) lstmAveragedRMSE(ds *trace.Dataset, simCfg sim.Config) (map[int]map[int]float64, error) {
	runs := max(o.LSTMRuns, 1)
	perRun, err := parallel.Map(o.Workers, runs, func(run int) (*sim.Result, error) {
		seed := o.Seed + uint64(run)*1009
		builder := func() forecast.Model {
			return forecast.NewLSTM(forecast.LSTMConfig{
				Epochs: o.LSTMEpochs, FitWindow: o.FitWindow, Seed: seed,
			})
		}
		return o.runPipeline(ds, 3, builder, simCfg, 1)
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]map[int]float64)
	for _, res := range perRun {
		for r := 0; r < ds.NumResources(); r++ {
			if out[r] == nil {
				out[r] = make(map[int]float64)
			}
			for _, h := range paperHorizons {
				out[r][h] += res.RMSEAt(r, h) / float64(runs)
			}
		}
	}
	return out, nil
}

// Table2 reports the aggregated training time of ARIMA and LSTM on one
// centroid series over the whole dataset duration, with the paper's
// schedule (initial training then retraining every 288 steps).
func Table2(o Options) (*Table, error) {
	o = o.withDefaults()
	tab := &Table{
		Title:  "Table II — Aggregated training time on one centroid (seconds)",
		Header: []string{"dataset", "steps", "ARIMA", "LSTM"},
	}
	for _, p := range clusterPresets() {
		ds, err := o.dataset(p)
		if err != nil {
			return nil, fmt.Errorf("exp: tab2 %s: %w", p.Name, err)
		}
		series, err := centroidSeries(ds, 0, 3, o.Seed)
		if err != nil {
			return nil, err
		}
		arima := forecast.NewAutoARIMA(o.Grid)
		if _, err := trackCentroid(series[0], arima, o, 1); err != nil {
			return nil, fmt.Errorf("exp: tab2 arima: %w", err)
		}
		lstm := forecast.NewLSTM(forecast.LSTMConfig{
			Epochs: o.LSTMEpochs, FitWindow: o.FitWindow, Seed: o.Seed,
		})
		if _, err := trackCentroid(series[0], lstm, o, 1); err != nil {
			return nil, fmt.Errorf("exp: tab2 lstm: %w", err)
		}
		tab.AddRow(p.Name, itoa(len(series[0])),
			f2(arima.FitDuration().Seconds()), f2(lstm.FitDuration().Seconds()))
	}
	return tab, nil
}

// Fig10 combines the clustering methods with sample-and-hold temporal
// forecasting and per-node offsets: RMSE vs h for the proposed dynamic
// clustering, the minimum-distance baseline, and offline static clustering,
// against the standard-deviation bound.
func Fig10(o Options) (*Table, error) {
	o = o.withDefaults()
	tab := &Table{
		Title: "Fig. 10 — Time-averaged RMSE vs h per clustering method (S&H forecaster)",
		Header: []string{"dataset", "resource", "h", "proposed", "min-distance",
			"static (offline)", "StdDev"},
	}
	simCfg := sim.Config{Horizons: paperHorizons, ForecastEvery: o.ForecastEvery}
	for _, p := range clusterPresets() {
		ds, err := o.dataset(p)
		if err != nil {
			return nil, fmt.Errorf("exp: fig10 %s: %w", p.Name, err)
		}
		prop, err := o.runPipeline(ds, 3, func() forecast.Model { return forecast.NewSampleAndHold() }, simCfg, o.Workers)
		if err != nil {
			return nil, fmt.Errorf("exp: fig10 proposed: %w", err)
		}
		zs, err := collectZ(ds, 0.3)
		if err != nil {
			return nil, err
		}
		md, err := baselineForecastRMSE(zs, ds, o, "min-distance")
		if err != nil {
			return nil, err
		}
		st, err := baselineForecastRMSE(zs, ds, o, "static")
		if err != nil {
			return nil, err
		}
		for r := 0; r < ds.NumResources(); r++ {
			std := datasetStdDev(ds, r)
			for _, h := range paperHorizons {
				tab.AddRow(p.Name, resourceLabel(ds, r), itoa(h),
					f4(prop.RMSEAt(r, h)), f4(md[r].At(h)), f4(st[r].At(h)), f4(std))
			}
		}
	}
	return tab, nil
}

// stepper abstracts the per-step clustering of the Fig. 10 baselines.
type stepper interface {
	step(points [][]float64) (*cluster.Step, error)
}

type mdStepper struct{ md *cluster.MinimumDistance }

func (s mdStepper) step(points [][]float64) (*cluster.Step, error) { return s.md.Step(points) }

type staticStepper struct{ st *cluster.Static }

func (s staticStepper) step(points [][]float64) (*cluster.Step, error) {
	return s.st.Step(points), nil
}

// baselineForecastRMSE runs the §V-C machinery (mode membership over M′,
// eq. 12 offsets, sample-and-hold centroid forecast) on top of a baseline
// clustering method and scores RMSE per horizon and resource.
func baselineForecastRMSE(zs [][][]float64, ds *trace.Dataset, o Options, method string) ([]*metrics.HorizonSet, error) {
	const mPrime = 5
	nRes := ds.NumResources()
	maxH := paperHorizons[len(paperHorizons)-1]
	out := make([]*metrics.HorizonSet, nRes)
	for r := range out {
		hs, err := metrics.NewHorizonSet(maxH)
		if err != nil {
			return nil, err
		}
		out[r] = hs
	}
	for r := 0; r < nRes; r++ {
		var st stepper
		switch method {
		case "min-distance":
			md, err := cluster.NewMinimumDistance(3, rand.New(rand.NewPCG(o.Seed, 61)))
			if err != nil {
				return nil, err
			}
			st = mdStepper{md: md}
		case "static":
			series := make([][]float64, ds.Nodes())
			for i := range series {
				series[i] = ds.NodeSeries(i, r)
			}
			sc, err := cluster.NewStatic(series, 3, rand.New(rand.NewPCG(o.Seed, 67)))
			if err != nil {
				return nil, err
			}
			st = staticStepper{st: sc}
		default:
			return nil, fmt.Errorf("exp: unknown method %q: %w", method, trace.ErrBadConfig)
		}
		var hist []blSnap
		n := ds.Nodes()
		for t := 1; t <= ds.Steps(); t++ {
			pts := scalarPoints(zs[t-1], r)
			step, err := st.step(pts)
			if err != nil {
				return nil, fmt.Errorf("exp: baseline %s step %d: %w", method, t, err)
			}
			hist = append([]blSnap{{assign: step.Assignments, cents: step.Centroids, z: pts}}, hist...)
			if len(hist) > mPrime+1 {
				hist = hist[:mPrime+1]
			}
			if t < o.Warmup || t%o.ForecastEvery != 0 {
				continue
			}
			// Forecast every node: mode cluster + eq. (12) offset; S&H holds
			// the current centroid for every h.
			k := len(step.Centroids)
			for _, h := range paperHorizons {
				if t+h > ds.Steps() {
					continue
				}
				var sq float64
				for i := 0; i < n; i++ {
					jStar := modeOf(hist, i, k)
					var off float64
					for _, s := range hist {
						alpha := 1.0
						if s.assign[i] != jStar {
							alpha = core.MaxAlphaInCell(s.z[i], jStar, s.cents)
						}
						off += alpha * (s.z[i][0] - s.cents[jStar][0])
					}
					off /= float64(len(hist))
					pred := clamp01(hist[0].cents[jStar][0] + off)
					diff := pred - ds.At(t+h-1, i)[r]
					sq += diff * diff
				}
				if err := out[r].Add(h, sqrtOf(sq/float64(n))); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// blSnap is one look-back entry of the baseline pipeline-lite.
type blSnap struct {
	assign []int
	cents  [][]float64
	z      [][]float64
}

func modeOf(hist []blSnap, node, k int) int {
	counts := make([]int, k)
	for _, s := range hist {
		counts[s.assign[node]]++
	}
	best := hist[0].assign[node]
	bestCount := counts[best]
	for j, c := range counts {
		if c > bestCount {
			best, bestCount = j, c
		}
	}
	return best
}

// Table3 sweeps M and M′ on the Google dataset (CPU) at h ∈ {1,5,10} with
// the sample-and-hold forecaster.
func Table3(o Options) (*Table, error) {
	o = o.withDefaults()
	ds, err := o.dataset(trace.GoogleLike())
	if err != nil {
		return nil, fmt.Errorf("exp: tab3: %w", err)
	}
	cpu, err := singleResource(ds, 0)
	if err != nil {
		return nil, err
	}
	values := []int{1, 5, 12, 100}
	horizons := []int{1, 5, 10}
	tab := &Table{
		Title:  "Table III — RMSE for M × M′ (Google CPU, sample-and-hold)",
		Header: []string{"h", "M", "M'=1", "M'=5", "M'=12", "M'=100"},
	}
	// The M × M′ grid cells are independent full-pipeline runs sharing only
	// the read-only dataset; fan them out (each system serial) and emit rows
	// in grid order after.
	grid, err := parallel.Map(o.Workers, len(values)*len(values), func(idx int) (*sim.Result, error) {
		m, mp := values[idx/len(values)], values[idx%len(values)]
		sys, err := core.NewSystem(core.Config{
			Nodes: cpu.Nodes(), Resources: 1, K: 3,
			M: m, MPrime: mp,
			InitialCollection: o.Warmup, RetrainEvery: retrainEvery,
			Seed: o.Seed, Workers: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("exp: tab3 M=%d M'=%d: %w", m, mp, err)
		}
		res, err := sim.Run(sys, cpu, sim.Config{Horizons: horizons, ForecastEvery: o.ForecastEvery})
		if err != nil {
			return nil, fmt.Errorf("exp: tab3 M=%d M'=%d: %w", m, mp, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for _, h := range horizons {
		for mi, m := range values {
			row := []string{itoa(h), itoa(m)}
			for mpi := range values {
				row = append(row, f4(grid[mi*len(values)+mpi].RMSEAt(0, h)))
			}
			tab.AddRow(row...)
		}
	}
	return tab, nil
}

// Fig11 compares the paper's similarity measure against the Jaccard index
// on the full pipeline (sample-and-hold forecaster).
func Fig11(o Options) (*Table, error) {
	o = o.withDefaults()
	tab := &Table{
		Title:  "Fig. 11 — RMSE vs h: proposed similarity measure vs Jaccard index",
		Header: []string{"dataset", "resource", "h", "proposed", "jaccard"},
	}
	simCfg := sim.Config{Horizons: paperHorizons, ForecastEvery: o.ForecastEvery}
	presets := clusterPresets()
	datasets := make([]*trace.Dataset, len(presets))
	for pi, p := range presets {
		ds, err := o.dataset(p)
		if err != nil {
			return nil, fmt.Errorf("exp: fig11 %s: %w", p.Name, err)
		}
		datasets[pi] = ds
	}
	// One independent pipeline run per (preset, similarity measure), each
	// system serial so the sweep level owns the worker budget.
	similarities := []cluster.Similarity{cluster.SimilarityProposed, cluster.SimilarityJaccard}
	results, err := parallel.Map(o.Workers, len(presets)*len(similarities), func(idx int) (*sim.Result, error) {
		pi, si := idx/len(similarities), idx%len(similarities)
		ds := datasets[pi]
		sys, err := core.NewSystem(core.Config{
			Nodes: ds.Nodes(), Resources: ds.NumResources(), K: 3,
			Similarity:        similarities[si],
			InitialCollection: o.Warmup, RetrainEvery: retrainEvery,
			Seed: o.Seed, Workers: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("exp: fig11 %s %v: %w", presets[pi].Name, similarities[si], err)
		}
		res, err := sim.Run(sys, ds, simCfg)
		if err != nil {
			return nil, fmt.Errorf("exp: fig11 %s %v: %w", presets[pi].Name, similarities[si], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range presets {
		ds := datasets[pi]
		prop := results[pi*len(similarities)]
		jac := results[pi*len(similarities)+1]
		for r := 0; r < ds.NumResources(); r++ {
			for _, h := range paperHorizons {
				tab.AddRow(p.Name, resourceLabel(ds, r), itoa(h),
					f4(prop.RMSEAt(r, h)), f4(jac.RMSEAt(r, h)))
			}
		}
	}
	return tab, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func sqrtOf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
