package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"orcf/internal/core"
)

// walHeaderSize is the file header plus fingerprint + resources.
const walHeaderSize = headerSize + 8 + 4

// walPreludeSize is the fixed per-record prefix: step (u64) + slot count
// (u32). The rest of the record is sized by the slot count.
const walPreludeSize = 8 + 4

// maxWALSlots bounds the slot count a record may claim, so a corrupt length
// field cannot drive a huge allocation during recovery.
const maxWALSlots = 1 << 24

// walRecordSize returns the on-disk size of one record for a fleet of n
// slots (r of which carry a measurement row) at dimensionality d: the
// prelude, n stable IDs, three n-bit bitsets (alive, row-present, arrived),
// r·d float64 values, and a CRC.
func walRecordSize(n, rows, dims int) int {
	return walPreludeSize + n*8 + 3*((n+7)/8) + rows*dims*8 + 4
}

// walWriter appends roster-carrying measurement records to one WAL epoch
// file. Records are variable-size: each carries the fleet's slot → ID
// binding and liveness at that step, so recovery can reconcile membership
// before replaying the step (see core.System.ReconcileRoster).
type walWriter struct {
	f     *os.File
	w     *bufio.Writer
	buf   []byte // one-record scratch, regrown as the fleet grows
	dims  int
	fsync bool
}

// createWAL creates (truncating any previous file of the same name) the WAL
// epoch file for records after the given step and writes its header.
func createWAL(path string, fingerprint uint64, dims int, fsync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	w := &walWriter{
		f:     f,
		w:     bufio.NewWriter(f),
		dims:  dims,
		fsync: fsync,
	}
	hdr := make([]byte, walHeaderSize)
	putHeader(hdr, KindWAL)
	binary.LittleEndian.PutUint64(hdr[headerSize:], fingerprint)
	binary.LittleEndian.PutUint32(hdr[headerSize+8:], uint32(dims))
	if _, err := w.w.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := w.flush(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// append writes one record. roster is the fleet layout at Step entry; x is
// positional over its slots (nil rows for tombstones and silent members);
// arrived flags which slots delivered a fresh measurement this step. The
// record is flushed to the OS before append returns (and fsynced when the
// writer was opened with fsync), so after a crash at any point the file
// ends in whole records plus at most one torn one.
func (w *walWriter) append(step int, roster *core.Roster, x [][]float64, arrived []bool) (int, error) {
	n := roster.Slots()
	if len(x) != n || len(arrived) != n {
		return 0, fmt.Errorf("persist: record for %d/%d slots, want %d: %w",
			len(x), len(arrived), n, ErrMismatch)
	}
	rows := 0
	for _, xi := range x {
		if xi == nil {
			continue
		}
		if len(xi) != w.dims {
			return 0, fmt.Errorf("persist: row has dim %d, want %d: %w", len(xi), w.dims, ErrMismatch)
		}
		rows++
	}
	size := walRecordSize(n, rows, w.dims)
	if cap(w.buf) < size {
		w.buf = make([]byte, size)
	}
	buf := w.buf[:size]
	binary.LittleEndian.PutUint64(buf, uint64(step))
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
	off := walPreludeSize
	for i := 0; i < n; i++ {
		id, _ := roster.IDAt(i)
		binary.LittleEndian.PutUint64(buf[off:], uint64(int64(id)))
		off += 8
	}
	bits := (n + 7) / 8
	aliveSet := buf[off : off+bits]
	rowSet := buf[off+bits : off+2*bits]
	arrivedSet := buf[off+2*bits : off+3*bits]
	clear(buf[off : off+3*bits])
	off += 3 * bits
	for i := 0; i < n; i++ {
		if _, ok := roster.IDAt(i); ok {
			aliveSet[i/8] |= 1 << (i % 8)
		}
		if x[i] != nil {
			rowSet[i/8] |= 1 << (i % 8)
			for _, v := range x[i] {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
				off += 8
			}
		}
		if arrived[i] {
			arrivedSet[i/8] |= 1 << (i % 8)
		}
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.Checksum(buf[:off], crcTable))
	if _, err := w.w.Write(buf); err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	return size, w.flush()
}

func (w *walWriter) flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
	}
	return nil
}

func (w *walWriter) close() error {
	if err := w.flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// walRecord is one decoded WAL entry.
type walRecord struct {
	step    int
	ids     []int
	alive   []bool
	x       [][]float64
	arrived []bool
}

// readWAL decodes one WAL file, stopping cleanly at the first torn or
// corrupt record: it returns the intact prefix and torn=true when a partial
// or checksum-failing suffix was discarded. Header-level corruption returns
// ErrCorrupt; a fingerprint or dimensionality mismatch returns ErrMismatch.
func readWAL(path string, fingerprint uint64, dims int) (recs []walRecord, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)

	hdr := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, false, fmt.Errorf("persist: %s: %w: truncated header", path, ErrCorrupt)
	}
	if err := checkHeader(hdr, KindWAL); err != nil {
		return nil, false, fmt.Errorf("persist: %s: %w", path, err)
	}
	if fp := binary.LittleEndian.Uint64(hdr[headerSize:]); fp != fingerprint {
		return nil, false, fmt.Errorf("persist: %s: fingerprint %#x, want %#x: %w",
			path, fp, fingerprint, ErrMismatch)
	}
	if d := binary.LittleEndian.Uint32(hdr[headerSize+8:]); int(d) != dims {
		return nil, false, fmt.Errorf("persist: %s: dimensionality %d, want %d: %w",
			path, d, dims, ErrMismatch)
	}

	var buf []byte
	for {
		prelude := make([]byte, walPreludeSize)
		if _, err := io.ReadFull(r, prelude); err != nil {
			// io.EOF means the file ends exactly on a record boundary;
			// anything else is a record cut mid-write.
			return recs, err != io.EOF, nil
		}
		n := int(binary.LittleEndian.Uint32(prelude[8:]))
		if n <= 0 || n > maxWALSlots {
			return recs, true, nil // implausible slot count: corrupt record
		}
		// Read the roster + bitsets first; the row count (and so the full
		// record size) depends on the row bitset.
		fixed := n*8 + 3*((n+7)/8)
		if cap(buf) < fixed {
			buf = make([]byte, fixed)
		}
		head := buf[:fixed]
		if _, err := io.ReadFull(r, head); err != nil {
			return recs, true, nil
		}
		bits := (n + 7) / 8
		rowSet := head[n*8+bits : n*8+2*bits]
		rows := 0
		for i := 0; i < n; i++ {
			if rowSet[i/8]&(1<<(i%8)) != 0 {
				rows++
			}
		}
		tail := make([]byte, rows*dims*8+4)
		if _, err := io.ReadFull(r, tail); err != nil {
			return recs, true, nil
		}
		crc := crc32.Checksum(prelude, crcTable)
		crc = crc32.Update(crc, crcTable, head)
		crc = crc32.Update(crc, crcTable, tail[:len(tail)-4])
		if crc != binary.LittleEndian.Uint32(tail[len(tail)-4:]) {
			return recs, true, nil
		}

		rec := walRecord{
			step:    int(binary.LittleEndian.Uint64(prelude)),
			ids:     make([]int, n),
			alive:   make([]bool, n),
			x:       make([][]float64, n),
			arrived: make([]bool, n),
		}
		for i := 0; i < n; i++ {
			rec.ids[i] = int(int64(binary.LittleEndian.Uint64(head[i*8:])))
		}
		aliveSet := head[n*8 : n*8+bits]
		arrivedSet := head[n*8+2*bits : n*8+3*bits]
		off := 0
		for i := 0; i < n; i++ {
			rec.alive[i] = aliveSet[i/8]&(1<<(i%8)) != 0
			rec.arrived[i] = arrivedSet[i/8]&(1<<(i%8)) != 0
			if rowSet[i/8]&(1<<(i%8)) == 0 {
				continue
			}
			row := make([]float64, dims)
			for d := range row {
				row[d] = math.Float64frombits(binary.LittleEndian.Uint64(tail[off:]))
				off += 8
			}
			rec.x[i] = row
		}
		recs = append(recs, rec)
	}
}
