// Package persist makes the pipeline's state durable: CRC-framed checkpoint
// files written with atomic rename plus an append-only measurement
// write-ahead log (WAL), so that a crashed collector recovers to exactly the
// state it held — load the newest valid checkpoint, then replay the WAL tail
// through core.System.Step (restore is bit-identical, see core.State, so the
// replayed steps reproduce the lost ones exactly).
//
// Layout of a state directory:
//
//	ckpt-<step>.ckpt   full core.State at <step> (gob, length- and CRC-framed)
//	wal-<step>.wal     measurement records for steps <step>+1, <step>+2, …
//
// Every checkpoint at step S rotates the WAL to a fresh wal-S file, so the
// files chain: recovery restores the newest checkpoint that validates and
// then walks the WAL files in step order, replaying records past the
// restored step until the chain ends — at the tip, at a torn tail (a record
// cut mid-write by the crash), or at a gap. A torn or corrupt suffix is
// never fatal: recovery simply stops at the last intact record, exactly the
// at-most-one-lost-step semantics the Manager's log-after-step ordering
// implies. Checkpoints are written on a background goroutine from an
// exported deep copy (core.System.ExportState), so encoding and fsync never
// stall the ingest loop.
//
// The Manager ties it together for a live system; the blob helpers
// (WriteBlobAtomic, ReadBlob) are also used standalone by cmd/collectd for
// its lighter tracker-state checkpoints.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Format constants: every file starts with magic, a format version, and a
// kind byte so checkpoint and WAL files are never confused for one another.
// Format version 2 made WAL records variable-size roster carriers (fleet
// membership changes online); version-1 files are rejected as ErrMismatch
// and recovery starts fresh.
const (
	formatVersion = 2

	// KindCheckpoint marks a checkpoint blob file.
	KindCheckpoint uint8 = 1
	// KindWAL marks a write-ahead-log file.
	KindWAL uint8 = 2
	// KindAux marks auxiliary blobs (e.g. cmd/collectd tracker state).
	KindAux uint8 = 3
)

var magic = [4]byte{'O', 'R', 'C', 'F'}

// headerSize is magic + uint16 version + uint8 kind.
const headerSize = 4 + 2 + 1

// ErrCorrupt reports a file whose framing, length, or checksum does not
// validate — a torn write or on-disk corruption.
var ErrCorrupt = errors.New("persist: corrupt or torn file")

// ErrMismatch reports a file that is intact but belongs to a different
// configuration (fingerprint or shape).
var ErrMismatch = errors.New("persist: state belongs to a different configuration")

// crcTable is the Castagnoli table used for every checksum in the format.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// putHeader writes the 7-byte file header into buf.
func putHeader(buf []byte, kind uint8) {
	copy(buf, magic[:])
	binary.LittleEndian.PutUint16(buf[4:], formatVersion)
	buf[6] = kind
}

// checkHeader validates a 7-byte file header.
func checkHeader(buf []byte, kind uint8) error {
	if len(buf) < headerSize || [4]byte(buf[:4]) != magic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != formatVersion {
		return fmt.Errorf("%w: format version %d, want %d", ErrMismatch, v, formatVersion)
	}
	if buf[6] != kind {
		return fmt.Errorf("%w: file kind %d, want %d", ErrMismatch, buf[6], kind)
	}
	return nil
}

// WriteBlobAtomic durably writes header + length + payload + CRC to path:
// the bytes go to a temporary file in the same directory, are fsynced, and
// the file is renamed over path, then the directory is fsynced — a reader
// (or a recovery after a crash at any point) sees either the complete old
// file or the complete new one, never a prefix.
func WriteBlobAtomic(path string, kind uint8, payload []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	frame := make([]byte, headerSize+8)
	putHeader(frame, kind)
	binary.LittleEndian.PutUint64(frame[headerSize:], uint64(len(payload)))
	if _, err = tmp.Write(frame); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err = tmp.Write(payload); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	if _, err = tmp.Write(crc[:]); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return syncDir(dir)
}

// ReadBlob reads and validates a file written by WriteBlobAtomic, returning
// the payload. It fails with ErrCorrupt when the frame or checksum does not
// validate and ErrMismatch when the file is of a different kind or format
// version.
func ReadBlob(path string, kind uint8) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if len(data) < headerSize+8+4 {
		return nil, fmt.Errorf("persist: %s: %w: short file", filepath.Base(path), ErrCorrupt)
	}
	if err := checkHeader(data, kind); err != nil {
		return nil, fmt.Errorf("persist: %s: %w", filepath.Base(path), err)
	}
	n := binary.LittleEndian.Uint64(data[headerSize:])
	body := data[headerSize+8:]
	if uint64(len(body)) != n+4 {
		return nil, fmt.Errorf("persist: %s: %w: payload %d bytes, frame says %d",
			filepath.Base(path), ErrCorrupt, len(body)-4, n)
	}
	payload := body[:n]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(body[n:]) {
		return nil, fmt.Errorf("persist: %s: %w: checksum mismatch", filepath.Base(path), ErrCorrupt)
	}
	return payload, nil
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// checkpointName returns the file name of the checkpoint at a step.
func checkpointName(step int) string { return fmt.Sprintf("ckpt-%016d.ckpt", step) }

// walName returns the file name of the WAL epoch starting after a step.
func walName(step int) string { return fmt.Sprintf("wal-%016d.wal", step) }

// parseStep extracts the step from a file name of the given prefix/suffix
// shape, returning ok=false for foreign files.
func parseStep(name, prefix, suffix string) (int, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var step int
	if _, err := fmt.Sscanf(name[len(prefix):len(name)-len(suffix)], "%d", &step); err != nil {
		return 0, false
	}
	return step, true
}

// listSteps returns the ascending step numbers of all files in dir matching
// the prefix/suffix shape.
func listSteps(dir, prefix, suffix string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var steps []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if step, ok := parseStep(e.Name(), prefix, suffix); ok {
			steps = append(steps, step)
		}
	}
	sort.Ints(steps)
	return steps, nil
}
