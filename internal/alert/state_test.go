package alert

import (
	"math"
	"math/rand/v2"
	"testing"
)

// oracleMachine is a deliberately brute-force re-implementation of the
// hysteresis automaton: it keeps the whole observation history and derives
// every streak by rescanning it, instead of maintaining counters. Any
// divergence from StateMachine is a bug in one of them.
type oracleMachine struct {
	rule   *Rule
	firing bool
	// hist holds every non-NaN observation; boundary is the index just past
	// the observation that caused the last transition (streaks never extend
	// across a transition — the transitioning observation is consumed).
	hist     []float64
	boundary int
}

func (o *oracleMachine) observe(v float64) Transition {
	if math.IsNaN(v) {
		return TransitionNone
	}
	o.hist = append(o.hist, v)
	i := len(o.hist) - 1
	if !o.firing {
		run := 0
		for j := i; j >= o.boundary && o.rule.Breached(o.hist[j]); j-- {
			run++
		}
		if run >= o.rule.FireStreak {
			o.firing = true
			o.boundary = i + 1
			return TransitionFire
		}
		return TransitionNone
	}
	run := 0
	for j := i; j >= o.boundary && o.rule.Cleared(o.hist[j]); j-- {
		run++
	}
	if run >= o.rule.ClearStreak {
		o.firing = false
		o.boundary = i + 1
		return TransitionResolve
	}
	return TransitionNone
}

// TestStateMachineMatchesOracle pins the streaming automaton against the
// brute-force oracle over randomized rule configurations and observation
// sequences deliberately concentrated at the threshold, inside the margin
// band, and at NaN — the inputs where off-by-one or tie bugs would hide.
func TestStateMachineMatchesOracle(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(42, 7))
	for trial := 0; trial < 400; trial++ {
		margin := []float64{0, 0, 0.1, 0.25}[rng.IntN(4)]
		r := &Rule{
			Name: "prop", Kind: KindThreshold, Scope: ScopeCluster,
			Above:       rng.IntN(2) == 0,
			Threshold:   []float64{-1, 0, 0.5, 1}[rng.IntN(4)],
			FireStreak:  1 + rng.IntN(4),
			ClearStreak: 1 + rng.IntN(4),
			ClearMargin: margin,
			Horizon:     1,
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		m := NewStateMachine(r)
		o := &oracleMachine{rule: r}

		// Offsets straddle the threshold, the margin boundary (exactly at
		// T±margin — must neither breach nor clear for above-rules), and both
		// safe sides; NaN rows model warming forecast entries.
		band := margin
		if band == 0 {
			band = 0.1
		}
		offsets := []float64{-2 * band, -band, -band / 2, 0, band / 2, band, 2 * band}
		for step := 0; step < 250; step++ {
			v := math.NaN()
			if rng.IntN(5) != 0 {
				v = r.Threshold + offsets[rng.IntN(len(offsets))]
			}
			got, want := m.Observe(v), o.observe(v)
			if got != want {
				t.Fatalf("trial %d step %d: rule %+v, value %v: machine says %v, oracle says %v",
					trial, step, r, v, got, want)
			}
			if m.Firing() != o.firing {
				t.Fatalf("trial %d step %d: firing disagreement (machine %v, oracle %v)",
					trial, step, m.Firing(), o.firing)
			}
		}
	}
}

// TestStateMachinePinnedSemantics pins the documented edge semantics with
// explicit sequences: ties at the threshold breach, the margin band freezes
// clearing, NaN moves nothing, and transitions consume their observation.
func TestStateMachinePinnedSemantics(t *testing.T) {
	t.Parallel()
	rule := &Rule{
		Name: "pin", Kind: KindThreshold, Scope: ScopeCluster, Above: true,
		Threshold: 0.8, FireStreak: 2, ClearStreak: 2, ClearMargin: 0.1, Horizon: 1,
	}
	type obs struct {
		v    float64
		want Transition
	}
	cases := []struct {
		name string
		seq  []obs
	}{
		{"tie at threshold fires", []obs{
			{0.8, TransitionNone}, {0.8, TransitionFire},
		}},
		{"non-breach resets fire streak", []obs{
			{0.9, TransitionNone}, {0.5, TransitionNone},
			{0.9, TransitionNone}, {0.9, TransitionFire},
		}},
		{"NaN is transparent to streaks", []obs{
			{0.9, TransitionNone}, {math.NaN(), TransitionNone}, {0.9, TransitionFire},
		}},
		{"margin band blocks resolution", []obs{
			{0.9, TransitionNone}, {0.9, TransitionFire},
			// 0.75 is inside (0.7, 0.8): not a breach, but not cleared either.
			{0.75, TransitionNone}, {0.75, TransitionNone}, {0.75, TransitionNone},
			{0.6, TransitionNone}, {0.6, TransitionResolve},
		}},
		{"margin band resets the clear streak", []obs{
			{0.9, TransitionNone}, {0.9, TransitionFire},
			{0.6, TransitionNone}, {0.75, TransitionNone}, // clear run broken
			{0.6, TransitionNone}, {0.6, TransitionResolve},
		}},
		{"fire observation does not count toward clearing", []obs{
			{0.9, TransitionNone}, {0.9, TransitionFire},
			{0.6, TransitionNone}, {0.6, TransitionResolve},
			{0.8, TransitionNone}, {0.8, TransitionFire}, // re-fires on ties
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewStateMachine(rule)
			for i, ob := range tc.seq {
				if got := m.Observe(ob.v); got != ob.want {
					t.Fatalf("observation %d (%v): got %v, want %v", i, ob.v, got, ob.want)
				}
			}
		})
	}
}
