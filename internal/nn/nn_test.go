package nn

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x5555)) }

func TestNewLSTMCellValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewLSTMCell(0, 4, testRNG(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	if _, err := NewLSTMCell(1, 0, testRNG(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
	if _, err := NewLSTMCell(1, 4, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil rng: want ErrBadConfig, got %v", err)
	}
}

func TestLSTMForwardShapes(t *testing.T) {
	t.Parallel()
	cell, err := NewLSTMCell(2, 5, testRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	seq := [][]float64{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}}
	hs, caches := cell.ForwardSequence(seq)
	if len(hs) != 3 || len(caches) != 3 {
		t.Fatalf("got %d states / %d caches, want 3", len(hs), len(caches))
	}
	for _, h := range hs {
		if len(h) != 5 {
			t.Fatalf("hidden width %d, want 5", len(h))
		}
		for _, v := range h {
			if math.Abs(v) >= 1 {
				t.Fatalf("hidden state out of tanh·sigmoid range: %v", v)
			}
		}
	}
}

func TestLSTMDeterministicInit(t *testing.T) {
	t.Parallel()
	c1, _ := NewLSTMCell(1, 4, testRNG(3))
	c2, _ := NewLSTMCell(1, 4, testRNG(3))
	for i := range c1.wx.W {
		if c1.wx.W[i] != c2.wx.W[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

// TestLSTMGradientCheck verifies the analytic BPTT gradients against central
// finite differences on a tiny network. This is the make-or-break test for
// the whole nn package.
func TestLSTMGradientCheck(t *testing.T) {
	t.Parallel()
	rng := testRNG(4)
	cell, err := NewLSTMCell(2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	seq := [][]float64{{0.5, -0.3}, {0.2, 0.8}, {-0.6, 0.1}, {0.4, 0.4}}
	target := []float64{0.3, -0.2, 0.5}

	loss := func() float64 {
		hs, _ := cell.ForwardSequence(seq)
		last := hs[len(hs)-1]
		var l float64
		for j := range last {
			d := last[j] - target[j]
			l += d * d
		}
		return l
	}

	// Analytic gradient.
	hs, caches := cell.ForwardSequence(seq)
	last := hs[len(hs)-1]
	dhs := make([][]float64, len(seq))
	dLast := make([]float64, len(last))
	for j := range last {
		dLast[j] = 2 * (last[j] - target[j])
	}
	dhs[len(seq)-1] = dLast
	for _, p := range cell.Params() {
		p.ZeroGrad()
	}
	cell.BackwardSequence(caches, dhs)

	const eps = 1e-6
	for pi, p := range cell.Params() {
		// Check a spread of entries in each tensor.
		stride := max(1, len(p.W)/7)
		for i := 0; i < len(p.W); i += stride {
			orig := p.W[i]
			p.W[i] = orig + eps
			up := loss()
			p.W[i] = orig - eps
			down := loss()
			p.W[i] = orig
			numeric := (up - down) / (2 * eps)
			analytic := p.Grad[i]
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if diff/scale > 1e-4 {
				t.Fatalf("param %d entry %d: analytic %v vs numeric %v", pi, i, analytic, numeric)
			}
		}
	}
}

// TestLSTMInputGradientCheck verifies ∂L/∂x against finite differences, which
// exercises the dx path used to stack layers.
func TestLSTMInputGradientCheck(t *testing.T) {
	t.Parallel()
	cell, err := NewLSTMCell(2, 3, testRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	seq := [][]float64{{0.5, -0.3}, {0.2, 0.8}}
	loss := func() float64 {
		hs, _ := cell.ForwardSequence(seq)
		last := hs[len(hs)-1]
		var l float64
		for _, v := range last {
			l += v * v
		}
		return l
	}
	hs, caches := cell.ForwardSequence(seq)
	last := hs[len(hs)-1]
	dhs := make([][]float64, len(seq))
	d := make([]float64, len(last))
	for j := range last {
		d[j] = 2 * last[j]
	}
	dhs[len(seq)-1] = d
	for _, p := range cell.Params() {
		p.ZeroGrad()
	}
	dxs := cell.BackwardSequence(caches, dhs)

	const eps = 1e-6
	for ti := range seq {
		for xi := range seq[ti] {
			orig := seq[ti][xi]
			seq[ti][xi] = orig + eps
			up := loss()
			seq[ti][xi] = orig - eps
			down := loss()
			seq[ti][xi] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-dxs[ti][xi]) > 1e-5*math.Max(1, math.Abs(numeric)) {
				t.Fatalf("dx[%d][%d]: analytic %v vs numeric %v", ti, xi, dxs[ti][xi], numeric)
			}
		}
	}
}

func TestDenseForwardBackward(t *testing.T) {
	t.Parallel()
	d, err := NewDense(3, 2, false, testRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2, 0.5}
	out, cache := d.Forward(x)
	if len(out) != 2 {
		t.Fatalf("output width %d, want 2", len(out))
	}
	// Gradient check.
	target := []float64{0.1, -0.1}
	loss := func() float64 {
		o, _ := d.Forward(x)
		var l float64
		for j := range o {
			diff := o[j] - target[j]
			l += diff * diff
		}
		return l
	}
	dout := make([]float64, 2)
	for j := range out {
		dout[j] = 2 * (out[j] - target[j])
	}
	for _, p := range d.Params() {
		p.ZeroGrad()
	}
	dx := d.Backward(cache, dout)
	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-dx[i]) > 1e-5 {
			t.Fatalf("dense dx[%d]: analytic %v vs numeric %v", i, dx[i], numeric)
		}
	}
}

func TestDenseReLUClipsGradient(t *testing.T) {
	t.Parallel()
	d, err := NewDense(1, 1, true, testRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// Force a negative preactivation.
	d.w.W[0] = -5
	d.b.W[0] = 0
	out, cache := d.Forward([]float64{1})
	if out[0] != 0 {
		t.Fatalf("ReLU output %v, want 0", out[0])
	}
	d.ZeroGradAll()
	dx := d.Backward(cache, []float64{1})
	if dx[0] != 0 || d.w.Grad[0] != 0 {
		t.Fatal("gradient should be blocked through inactive ReLU")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	t.Parallel()
	p := newParam(2)
	p.W[0], p.W[1] = 5, -3
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad[0] = 2 * (p.W[0] - 1)
		p.Grad[1] = 2 * (p.W[1] - 2)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W[0]-1) > 0.05 || math.Abs(p.W[1]-2) > 0.05 {
		t.Fatalf("Adam did not converge: %v", p.W)
	}
}

func TestClipGradients(t *testing.T) {
	t.Parallel()
	p := newParam(2)
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	norm := ClipGradients([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v, want 5", norm)
	}
	if math.Abs(p.Grad[0]-0.6) > 1e-12 || math.Abs(p.Grad[1]-0.8) > 1e-12 {
		t.Fatalf("clipped grads %v, want [0.6 0.8]", p.Grad)
	}
	// Below the threshold: untouched.
	p.Grad[0], p.Grad[1] = 0.3, 0.4
	ClipGradients([]*Param{p}, 1)
	if p.Grad[0] != 0.3 {
		t.Fatal("grads below max norm must not change")
	}
}

func TestNetworkLearnsSine(t *testing.T) {
	t.Parallel()
	rng := testRNG(8)
	net, err := NewLSTMNetwork(NetworkConfig{InputSize: 1, HiddenSize: 8, Layers: 2, OutputSize: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Predict next value of a sine mapped into [0.1, 0.9] (ReLU-safe).
	series := make([]float64, 220)
	for i := range series {
		series[i] = 0.5 + 0.4*math.Sin(float64(i)*2*math.Pi/20)
	}
	window := 10
	var seqs [][][]float64
	var targets [][]float64
	for i := 0; i+window < len(series); i++ {
		seq := make([][]float64, window)
		for j := 0; j < window; j++ {
			seq[j] = []float64{series[i+j]}
		}
		seqs = append(seqs, seq)
		targets = append(targets, []float64{series[i+window]})
	}
	opt := NewAdam(0.01)
	order := make([]int, len(seqs))
	for i := range order {
		order[i] = i
	}
	var loss float64
	for epoch := 0; epoch < 60; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		loss = net.TrainEpoch(seqs, targets, order, 32, opt, 5)
	}
	if loss > 0.002 {
		t.Fatalf("network failed to learn sine: final MSE %v", loss)
	}
	// One-step prediction quality on a fresh window.
	pred := net.Predict(seqs[17])
	if math.Abs(pred[0]-targets[17][0]) > 0.1 {
		t.Fatalf("prediction %v vs target %v", pred[0], targets[17][0])
	}
}

func TestNetworkConfigValidationAndParams(t *testing.T) {
	t.Parallel()
	net, err := NewLSTMNetwork(NetworkConfig{}, testRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: 2 layers × 3 tensors + dense 2 tensors = 8.
	if got := len(net.Params()); got != 8 {
		t.Fatalf("param tensors = %d, want 8", got)
	}
	if _, err := NewLSTMNetwork(NetworkConfig{Layers: -1}, testRNG(9)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

// ZeroGradAll is a small helper for tests.
func (d *Dense) ZeroGradAll() {
	for _, p := range d.Params() {
		p.ZeroGrad()
	}
}
