package alert

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"orcf/internal/core"
)

// Event is one alert transition, delivered to every sink and recorded in
// /v1/alerts history. All float fields are finite: transitions only happen
// on finite observations, and departure resolves carry the last observed
// value.
type Event struct {
	// Rule is the name of the rule that transitioned.
	Rule string `json:"rule"`
	// Kind is the rule's kind.
	Kind Kind `json:"kind"`
	// Scope is the rule's scope.
	Scope Scope `json:"scope"`
	// State is "firing" or "resolved".
	State string `json:"state"`
	// Tracker is the rule's cluster tracker.
	Tracker int `json:"tracker"`
	// Cluster is the targeted cluster index (-1 for node scope).
	Cluster int `json:"cluster"`
	// Node is the targeted stable node ID (-1 for cluster scope).
	Node int `json:"node"`
	// Value is the evaluated value at the transition (the last observed
	// value for a departure resolve).
	Value float64 `json:"value"`
	// Threshold is the rule's threshold.
	Threshold float64 `json:"threshold"`
	// Horizon is the rule's forecast look-ahead in steps.
	Horizon int `json:"horizon"`
	// Generation is the snapshot generation the transition happened at.
	Generation uint64 `json:"generation"`
	// Step is the pipeline step the transition happened at.
	Step int `json:"step"`
	// Reason is empty for forecast-driven transitions, "departed" when a
	// firing node-scope instance resolved because its member left the fleet.
	Reason string `json:"reason,omitempty"`
}

// The Event.State values.
const (
	// StateFiring marks a fire transition.
	StateFiring = "firing"
	// StateResolved marks a resolve transition.
	StateResolved = "resolved"
)

// Active is one currently firing instance, as reported by Engine.Active and
// /v1/alerts.
type Active struct {
	// Rule is the firing rule's name.
	Rule string `json:"rule"`
	// Kind is the rule's kind.
	Kind Kind `json:"kind"`
	// Scope is the rule's scope.
	Scope Scope `json:"scope"`
	// Tracker is the rule's cluster tracker.
	Tracker int `json:"tracker"`
	// Cluster is the targeted cluster (-1 for node scope).
	Cluster int `json:"cluster"`
	// Node is the targeted stable node ID (-1 for cluster scope).
	Node int `json:"node"`
	// Value is the most recent evaluated value.
	Value float64 `json:"value"`
	// Threshold is the rule's threshold.
	Threshold float64 `json:"threshold"`
	// SinceStep is the pipeline step the instance fired at.
	SinceStep int `json:"since_step"`
	// SinceGeneration is the snapshot generation the instance fired at.
	SinceGeneration uint64 `json:"since_generation"`
}

// Stats is the engine's cumulative accounting, surfaced by /v1/stats and the
// orcf_alert_* metrics.
type Stats struct {
	// Rules is the number of loaded rules.
	Rules int `json:"rules"`
	// Firing is the number of currently firing instances.
	Firing int `json:"firing"`
	// Fires counts fire transitions.
	Fires int64 `json:"fires"`
	// Resolves counts resolve transitions (departures included).
	Resolves int64 `json:"resolves"`
	// Evaluations counts rule-instance evaluations with data.
	Evaluations int64 `json:"evaluations"`
	// NaNSkips counts evaluations skipped on a NaN forecast row (members
	// warming up behind the presence mask).
	NaNSkips int64 `json:"nan_skips"`
	// TargetErrors counts evaluations skipped because a rule referenced a
	// tracker, cluster, dimension, or horizon the snapshot does not have.
	TargetErrors int64 `json:"target_errors"`
	// LastGeneration is the newest snapshot generation evaluated.
	LastGeneration uint64 `json:"last_generation"`
	// Sinks aggregates delivery accounting across all attached sinks.
	Sinks SinkStats `json:"sinks"`
}

// Config assembles an Engine.
type Config struct {
	// Rules is the validated rule set; required (may hold zero rules).
	Rules *RuleSet
	// Sinks receive every transition event, in order. Optional.
	Sinks []Sink
	// Workers bounds the per-node fan-out of the one forecast computation a
	// generation with node-scope rules needs (0 = GOMAXPROCS).
	Workers int
	// MaxHorizon, when positive, rejects rule sets whose rules look further
	// ahead than the snapshots will serve (core.Config.SnapshotHorizon).
	MaxHorizon int
}

// instanceKey addresses one (rule, target) automaton. Rule names are unique
// and each rule has a fixed scope, so (name, target) cannot collide across
// scopes.
type instanceKey struct {
	rule   string
	target int
}

// instance is one live automaton plus its display state.
type instance struct {
	rule      *Rule
	cluster   int // -1 for node scope
	node      int // -1 for cluster scope
	m         *StateMachine
	sinceStep int
	sinceGen  uint64
}

// Engine evaluates a rule set against published snapshots and drives the
// per-instance state machines. All methods are safe for concurrent use;
// evaluation of one generation is serialized and idempotent (a snapshot
// generation already evaluated is a no-op), so any number of goroutines may
// hand it snapshots concurrently with stepping and serving.
type Engine struct {
	cfg   Config
	rules *RuleSet

	mu        sync.Mutex
	instances map[instanceKey]*instance
	lastGen   uint64
	firing    int
	fires     int64
	resolves  int64
	evals     int64
	nanSkips  int64
	targetErr int64
}

// New validates the configuration and builds the engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Rules == nil {
		return nil, fmt.Errorf("alert: nil rule set: %w", ErrBadRule)
	}
	if err := cfg.Rules.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("alert: negative workers: %w", ErrBadRule)
	}
	if cfg.MaxHorizon > 0 && cfg.Rules.MaxHorizon() > cfg.MaxHorizon {
		return nil, fmt.Errorf("alert: rule horizon %d exceeds snapshot horizon %d: %w",
			cfg.Rules.MaxHorizon(), cfg.MaxHorizon, ErrBadRule)
	}
	return &Engine{
		cfg:       cfg,
		rules:     cfg.Rules,
		instances: make(map[instanceKey]*instance),
	}, nil
}

// Rules returns the engine's rule set (shared, treat as immutable).
func (e *Engine) Rules() *RuleSet { return e.rules }

// Evaluate runs every rule against one published snapshot and delivers the
// resulting transition events to the sinks, in deterministic order (rule
// order, then ascending target). It is a no-op for a nil snapshot, a
// generation at or below the newest one already evaluated, or a snapshot
// whose models are not trained yet. The returned events are the caller's to
// keep; the error reports a failed forecast computation (the affected
// generation is then skipped without touching any streak).
func (e *Engine) Evaluate(snap *core.Snapshot) ([]Event, error) {
	if snap == nil {
		return nil, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if snap.Generation() <= e.lastGen {
		return nil, nil
	}
	e.lastGen = snap.Generation()
	if !snap.Ready() {
		return nil, nil
	}

	// One forecast computation covers every node-scope rule this generation;
	// computed lazily so cluster-only rule sets never pay for it.
	var nodeF [][][]float64
	nodeH := 0
	for i := range e.rules.Rules {
		r := &e.rules.Rules[i]
		if r.Scope == ScopeNode && r.Horizon <= snap.MaxHorizon() && r.Horizon > nodeH {
			nodeH = r.Horizon
		}
	}
	if nodeH > 0 {
		f, err := snap.Forecast(nodeH, e.cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("alert: forecasting for node rules: %w", err)
		}
		nodeF = f
	}

	var events []Event
	for i := range e.rules.Rules {
		r := &e.rules.Rules[i]
		if r.Tracker >= snap.Trackers() || r.Horizon > snap.MaxHorizon() {
			e.targetErr++
			continue
		}
		switch r.Scope {
		case ScopeCluster:
			events = e.evalClusterRule(snap, r, events)
		case ScopeNode:
			events = e.evalNodeRule(snap, r, nodeF, events)
		}
	}
	events = append(events, e.dropDeparted(snap)...)

	for _, ev := range events {
		for _, s := range e.cfg.Sinks {
			s.Deliver(ev)
		}
	}
	return events, nil
}

// evalClusterRule evaluates one cluster-scope rule against the snapshot's
// precomputed centroid forecasts.
func (e *Engine) evalClusterRule(snap *core.Snapshot, r *Rule, events []Event) []Event {
	cf := snap.CentroidForecasts(r.Tracker)
	if cf == nil {
		e.targetErr++
		return events
	}
	lo, hi := 0, snap.Clusters()
	if r.Cluster >= 0 {
		if r.Cluster >= snap.Clusters() {
			e.targetErr++
			return events
		}
		lo, hi = r.Cluster, r.Cluster+1
	}
	for j := lo; j < hi; j++ {
		if r.Dim >= len(cf[j]) {
			e.targetErr++
			continue
		}
		v := e.ruleValue(r, cf[j][r.Dim])
		events = e.observe(snap, r, j, -1, v, events)
	}
	return events
}

// evalNodeRule evaluates one node-scope rule against the per-node forecast
// tensor (nil when no node rule fit the snapshot horizon).
func (e *Engine) evalNodeRule(snap *core.Snapshot, r *Rule, nodeF [][][]float64, events []Event) []Event {
	if nodeF == nil || r.Dim >= snap.Resources() {
		e.targetErr++
		return events
	}
	roster := snap.Roster()
	series := make([]float64, r.Horizon)
	for slot := 0; slot < snap.Nodes(); slot++ {
		id, live := roster.IDAt(slot)
		if !live {
			continue
		}
		for hi := 0; hi < r.Horizon; hi++ {
			series[hi] = nodeF[hi][slot][r.Dim]
		}
		v := e.ruleValue(r, series)
		events = e.observe(snap, r, -1, id, v, events)
	}
	return events
}

// ruleValue turns one forecast series (indexed by horizon-1, at least
// Horizon long) into the rule's evaluated value: the value at the horizon
// for threshold rules, the per-hour slope across the horizon for trend
// rules. NaN propagates (a warming row stays a skip).
func (e *Engine) ruleValue(r *Rule, series []float64) float64 {
	at := series[r.Horizon-1]
	if r.Kind == KindThreshold {
		return at
	}
	return (at - series[0]) / float64(r.Horizon-1) * float64(e.rules.StepsPerHour)
}

// observe feeds one evaluated value to the (rule, target) instance, creating
// it on first contact, and appends any transition event.
func (e *Engine) observe(snap *core.Snapshot, r *Rule, cluster, node int, v float64, events []Event) []Event {
	if math.IsNaN(v) {
		e.nanSkips++
		return events
	}
	target := cluster
	if r.Scope == ScopeNode {
		target = node
	}
	key := instanceKey{rule: r.Name, target: target}
	inst := e.instances[key]
	if inst == nil {
		inst = &instance{rule: r, cluster: cluster, node: node, m: NewStateMachine(r)}
		e.instances[key] = inst
	}
	e.evals++
	switch inst.m.Observe(v) {
	case TransitionFire:
		e.fires++
		e.firing++
		inst.sinceStep = snap.Steps()
		inst.sinceGen = snap.Generation()
		events = append(events, e.event(snap, inst, StateFiring, v, ""))
	case TransitionResolve:
		e.resolves++
		e.firing--
		events = append(events, e.event(snap, inst, StateResolved, v, ""))
	}
	return events
}

// dropDeparted retires instances whose node left the fleet, resolving any
// that were firing (reason "departed") in deterministic order.
func (e *Engine) dropDeparted(snap *core.Snapshot) []Event {
	roster := snap.Roster()
	var gone []instanceKey
	for key, inst := range e.instances {
		if inst.node < 0 {
			continue
		}
		if _, ok := roster.SlotOf(inst.node); !ok {
			gone = append(gone, key)
		}
	}
	sort.Slice(gone, func(i, j int) bool {
		if gone[i].rule != gone[j].rule {
			return gone[i].rule < gone[j].rule
		}
		return gone[i].target < gone[j].target
	})
	var events []Event
	for _, key := range gone {
		inst := e.instances[key]
		delete(e.instances, key)
		if inst.m.Firing() {
			e.resolves++
			e.firing--
			last, _ := inst.m.Last()
			events = append(events, e.event(snap, inst, StateResolved, last, "departed"))
		}
	}
	return events
}

// event assembles one transition event from an instance.
func (e *Engine) event(snap *core.Snapshot, inst *instance, state string, v float64, reason string) Event {
	return Event{
		Rule:       inst.rule.Name,
		Kind:       inst.rule.Kind,
		Scope:      inst.rule.Scope,
		State:      state,
		Tracker:    inst.rule.Tracker,
		Cluster:    inst.cluster,
		Node:       inst.node,
		Value:      v,
		Threshold:  inst.rule.Threshold,
		Horizon:    inst.rule.Horizon,
		Generation: snap.Generation(),
		Step:       snap.Steps(),
		Reason:     reason,
	}
}

// Active returns the currently firing instances, sorted by rule name then
// target, with their latest evaluated values.
func (e *Engine) Active() []Active {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Active
	for _, inst := range e.instances {
		if !inst.m.Firing() {
			continue
		}
		last, _ := inst.m.Last()
		out = append(out, Active{
			Rule:            inst.rule.Name,
			Kind:            inst.rule.Kind,
			Scope:           inst.rule.Scope,
			Tracker:         inst.rule.Tracker,
			Cluster:         inst.cluster,
			Node:            inst.node,
			Value:           last,
			Threshold:       inst.rule.Threshold,
			SinceStep:       inst.sinceStep,
			SinceGeneration: inst.sinceGen,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		if out[i].Cluster != out[j].Cluster {
			return out[i].Cluster < out[j].Cluster
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Stats returns the engine's cumulative accounting, including aggregated
// sink delivery stats.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := Stats{
		Rules:          len(e.rules.Rules),
		Firing:         e.firing,
		Fires:          e.fires,
		Resolves:       e.resolves,
		Evaluations:    e.evals,
		NaNSkips:       e.nanSkips,
		TargetErrors:   e.targetErr,
		LastGeneration: e.lastGen,
	}
	e.mu.Unlock()
	for _, s := range e.cfg.Sinks {
		if sr, ok := s.(StatsReporter); ok {
			ss := sr.SinkStats()
			st.Sinks.Delivered += ss.Delivered
			st.Sinks.Retries += ss.Retries
			st.Sinks.Dropped += ss.Dropped
		}
	}
	return st
}
