// Command benchjson runs the repository's benchmark families with -benchmem
// and writes a machine-readable JSON summary — the committed BENCH_*.json
// perf trajectory. Each growth PR regenerates the file (make bench-json), so
// the history of committed baselines shows every change's perf delta.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_0008.json     # full run, write baseline
//	go run ./cmd/benchjson -short                   # CI smoke: 1 iteration,
//	                                                # verify all families parse
//	go run ./cmd/benchjson -compare old.json new.json
//	                                                # per-benchmark delta table
//	go run ./cmd/benchjson -compare -threshold 25 old.json new.json
//	                                                # fail on >25% ns/op regression
//
// The six families cover the pipeline hot paths: PipelineStep,
// EnsembleRetrain, and EnsembleSelect (ingest/refit/model-zoo scoring),
// ForecastQuery (eq. 12 reconstruction), ServeForecast (query plane cache),
// and TransportIngest (wire protocols).
// Output is deterministic modulo the measurements themselves: results are
// sorted by package and benchmark name, and no timestamp is recorded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// family is one benchmark family: the go test package it lives in and the
// -bench pattern selecting it.
type family struct {
	Name    string
	Pkg     string
	Pattern string
}

// families are the benchmark families the perf trajectory tracks. The
// patterns are anchored so e.g. PipelineStepSerial stays out of the
// PipelineStep family's numbers.
var families = []family{
	{"PipelineStep", ".", "^BenchmarkPipelineStep$"},
	{"ForecastQuery", ".", "^BenchmarkForecastQuery$"},
	{"EnsembleRetrain", ".", "^BenchmarkEnsembleRetrain$"},
	{"EnsembleSelect", ".", "^BenchmarkEnsembleSelect$"},
	{"ServeForecast", "./internal/serve", "^BenchmarkServeForecast$"},
	{"TransportIngest", "./internal/transport", "^BenchmarkTransportIngest$"},
}

// result is one parsed benchmark line.
type result struct {
	Family     string `json:"family"`
	Package    string `json:"package"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value (ns/op, B/op, allocs/op, plus custom units
	// like msgs/s).
	Metrics map[string]float64 `json:"metrics"`
}

// report is the BENCH_*.json payload.
type report struct {
	Go        string   `json:"go"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`
}

// finite64 fences non-finite parsed values out of the JSON payload
// (encoding/json rejects NaN and ±Inf).
func finite64(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// parseBenchLines extracts benchmark result lines from go test -bench output.
func parseBenchLines(fam family, out string) []result {
	var results []result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{
			Family:     fam.Name,
			Package:    fam.Pkg,
			Name:       fields[0],
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = finite64(v)
		}
		if len(r.Metrics) > 0 {
			results = append(results, r)
		}
	}
	return results
}

// runFamily executes one family's benchmarks and returns the parsed results.
func runFamily(fam family, benchtime string) ([]result, error) {
	args := []string{"test", "-run", "^$", "-bench", fam.Pattern, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, fam.Pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("benchjson: %s: go %s: %w\n%s",
			fam.Name, strings.Join(args, " "), err, out)
	}
	return parseBenchLines(fam, string(out)), nil
}

// benchKey identifies one benchmark across two reports.
type benchKey struct {
	Family string
	Name   string
}

// loadReport reads and decodes one BENCH_*.json file.
func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return &rep, nil
}

// indexResults maps (family, name) → result, so compare matches benchmarks
// across reports regardless of ordering.
func indexResults(rep *report) map[benchKey]result {
	idx := make(map[benchKey]result, len(rep.Results))
	for _, r := range rep.Results {
		idx[benchKey{r.Family, r.Name}] = r
	}
	return idx
}

// compareUnits are the metrics the delta table reports, in column order.
var compareUnits = []string{"ns/op", "B/op", "allocs/op"}

// deltaPct returns the relative change new vs old in percent, or NaN when the
// old value is zero (no meaningful ratio).
func deltaPct(oldV, newV float64) float64 {
	if oldV == 0 {
		return math.NaN()
	}
	return (newV - oldV) / oldV * 100
}

// fmtDelta renders one ±x.x% cell; NaN (zero baseline) renders as "-".
func fmtDelta(pct float64) string {
	if math.IsNaN(pct) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

// compareReports prints a per-benchmark delta table of oldPath vs newPath and
// returns the process exit code. With threshold > 0, any benchmark present in
// both reports whose ns/op regressed by more than threshold percent fails the
// comparison; threshold 0 means informational only (the CI smoke comparison
// runs 1-iteration measurements, far too noisy to gate on).
func compareReports(oldPath, newPath string, threshold float64) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	oldIdx, newIdx := indexResults(oldRep), indexResults(newRep)

	keys := make([]benchKey, 0, len(oldIdx))
	for k := range oldIdx {
		keys = append(keys, k)
	}
	for k := range newIdx {
		if _, ok := oldIdx[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Family != keys[j].Family {
			return keys[i].Family < keys[j].Family
		}
		return keys[i].Name < keys[j].Name
	})

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\tns/op old\tns/op new\tΔ\tB/op old\tB/op new\tΔ\tallocs old\tallocs new\tΔ\n")
	var regressions []string
	for _, k := range keys {
		oldR, haveOld := oldIdx[k]
		newR, haveNew := newIdx[k]
		switch {
		case !haveOld:
			fmt.Fprintf(w, "%s\t(new)\t%.0f\t-\t-\t%.0f\t-\t-\t%.0f\t-\n", k.Name,
				newR.Metrics["ns/op"], newR.Metrics["B/op"], newR.Metrics["allocs/op"])
			continue
		case !haveNew:
			fmt.Fprintf(w, "%s\t%.0f\t(gone)\t-\t%.0f\t-\t-\t%.0f\t-\t-\n", k.Name,
				oldR.Metrics["ns/op"], oldR.Metrics["B/op"], oldR.Metrics["allocs/op"])
			continue
		}
		cells := make([]string, 0, 9)
		for _, unit := range compareUnits {
			o, n := oldR.Metrics[unit], newR.Metrics[unit]
			cells = append(cells, fmt.Sprintf("%.0f", o), fmt.Sprintf("%.0f", n), fmtDelta(deltaPct(o, n)))
		}
		fmt.Fprintf(w, "%s\t%s\n", k.Name, strings.Join(cells, "\t"))
		if pct := deltaPct(oldR.Metrics["ns/op"], newR.Metrics["ns/op"]); threshold > 0 && pct > threshold {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %+.1f%% (limit %+.1f%%)", k.Name, pct, threshold))
		}
	}
	w.Flush()
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) past threshold:\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	return 0
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out       = flag.String("out", "", "file to write the JSON report to (empty = stdout)")
		short     = flag.Bool("short", false, "smoke mode: one iteration per benchmark, verify every family parses")
		benchtime = flag.String("benchtime", "", "go test -benchtime override (empty = go default; -short forces 1x)")
		compare   = flag.Bool("compare", false, "compare two BENCH_*.json files (args: old.json new.json) instead of running benchmarks")
		threshold = flag.Float64("threshold", 0, "with -compare: fail when any ns/op regresses by more than this percent (0 = report only)")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			return 1
		}
		return compareReports(flag.Arg(0), flag.Arg(1), *threshold)
	}
	bt := *benchtime
	if *short {
		bt = "1x"
	}

	rep := report{Go: runtime.Version(), Benchtime: bt}
	missing := []string{}
	for _, fam := range families {
		results, err := runFamily(fam, bt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if len(results) == 0 {
			missing = append(missing, fam.Name)
			continue
		}
		rep.Results = append(rep.Results, results...)
		fmt.Fprintf(os.Stderr, "benchjson: %s: %d result(s)\n", fam.Name, len(results))
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no results parsed for: %s\n", strings.Join(missing, ", "))
		return 1
	}
	sort.Slice(rep.Results, func(i, j int) bool {
		if rep.Results[i].Package != rep.Results[j].Package {
			return rep.Results[i].Package < rep.Results[j].Package
		}
		return rep.Results[i].Name < rep.Results[j].Name
	})

	payload, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	payload = append(payload, '\n')
	if *out == "" {
		os.Stdout.Write(payload)
		return 0
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d results)\n", *out, len(rep.Results))
	return 0
}
