# Tier-1 gate plus the race-mode pass over the concurrency-bearing packages.
# CI (.github/workflows/ci.yml) runs these same targets as individual steps;
# a target added to `ci:` below must also be added there to run in CI.

GO ?= go

# Packages that spawn goroutines (worker pools, TCP collection plane, HTTP
# query plane, background checkpointing) — kept in one place so the race
# pass and CI never drift apart.
RACE_PKGS = ./internal/parallel ./internal/core ./internal/forecast \
            ./internal/transport ./internal/agent ./internal/serve \
            ./internal/persist .

.PHONY: ci fmt vet build test race docs churn-smoke bench

ci: fmt vet build test race docs churn-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Docs gate: markdown links in README/docs must resolve, exported
# identifiers in the gated packages must carry doc comments, and every
# cmd/* flag must stay documented in docs/OPERATIONS.md (and vice versa).
docs:
	$(GO) run ./internal/tools/docscheck

# Churn smoke: a small elastic fleet with Poisson join/leave against a
# live in-process collector, verified bit-for-bit (exit 1 on mismatch).
churn-smoke:
	$(GO) run ./cmd/loadgen -nodes 64 -conns 4 -steps 40 -churn 1.5

bench:
	$(GO) test -run xxx -bench 'PipelineStep|ForecastQuery|EnsembleRetrain' -benchmem .
	$(GO) test -run xxx -bench ServeForecast -benchmem ./internal/serve
	$(GO) test -run xxx -bench TransportIngest -benchmem ./internal/transport
