// Package agent provides the node-side runtime of the collection plane: a
// loop that samples a measurement source, filters through a transmission
// policy (§V-A), and ships surviving measurements to the central collector.
// cmd/nodeagent and the livecollect example are thin wrappers around it.
//
// The transport is abstracted behind the Sender interface so the same loop
// runs over real TCP (transport.Client), in-process fakes in tests, or any
// future transport.
//
// Fleet lifecycle: an agent needs no join or leave protocol. Its first
// delivered measurement makes the collector add the node to the fleet
// (warm-up behind the presence mask), and when the loop ends — source
// exhausted, MaxSteps reached, or context cancelled — the agent simply
// stops sampling, so its local clock stops advancing and the collector's
// absence timeout eventually evicts the node. Restarting an agent under
// the same node ID before the timeout resumes the same fleet member;
// restarting after eviction rejoins it with a fresh history.
package agent

import (
	"context"
	"errors"
	"fmt"
	"time"

	"orcf/internal/transmit"
	"orcf/internal/transport"
)

// ErrBadConfig reports invalid agent construction parameters.
var ErrBadConfig = errors.New("agent: invalid configuration")

// Source produces the node's measurement for a given 1-based step. The
// second return value is false when the source is exhausted, which ends the
// agent's run cleanly.
type Source func(step int) ([]float64, bool)

// Sender ships one measurement to the collector. transport.Client and
// transport.BatchClient satisfy this interface.
//
// A Sender may additionally implement Clock and/or report backpressure by
// returning transport.ErrBacklogged; see Agent.Run for how the loop reacts.
type Sender interface {
	Send(step int, values []float64) error
}

// Clock is optionally implemented by senders (transport.BatchClient) that
// can carry the node's local step count to the collector independently of
// measurements. The agent advances it on every sampled step, so the
// central eq. 5 frequency accounting sees suppressed steps too.
type Clock interface {
	Advance(step int)
}

// Config assembles an Agent.
type Config struct {
	// Node is the agent's node identity.
	Node int
	// Policy decides per-step transmission; required.
	Policy transmit.Policy
	// Source produces measurements; required.
	Source Source
	// Sender ships measurements; required.
	Sender Sender
	// Interval is the sampling period. Zero means no pacing (run as fast
	// as the source allows) — useful for replay and tests.
	Interval time.Duration
	// MaxSteps stops after this many steps (0 = until the source ends or
	// the context is cancelled).
	MaxSteps int
}

// Agent runs the per-node loop.
type Agent struct {
	cfg     Config
	meter   transmit.Meter
	stored  []float64
	clock   Clock // cfg.Sender when it implements Clock, else nil
	dropped int
}

// New validates the configuration.
func New(cfg Config) (*Agent, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("agent: nil policy: %w", ErrBadConfig)
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("agent: nil source: %w", ErrBadConfig)
	}
	if cfg.Sender == nil {
		return nil, fmt.Errorf("agent: nil sender: %w", ErrBadConfig)
	}
	if cfg.Node < 0 {
		return nil, fmt.Errorf("agent: node %d: %w", cfg.Node, ErrBadConfig)
	}
	a := &Agent{cfg: cfg}
	a.clock, _ = cfg.Sender.(Clock)
	return a, nil
}

// Frequency returns the realized transmission frequency so far.
func (a *Agent) Frequency() float64 { return a.meter.Frequency() }

// Steps returns the number of processed steps.
func (a *Agent) Steps() int { return a.meter.Steps() }

// Dropped returns how many policy-approved transmissions the sender
// rejected transiently — backpressure (transport.ErrBacklogged) or a
// collector outage being ridden out (transport.ErrBackoff).
func (a *Agent) Dropped() int { return a.dropped }

// Run executes the loop until the context is cancelled, the source is
// exhausted, MaxSteps is reached, or a send fails. It returns nil on clean
// termination (including context cancellation).
//
// Backpressure is not a send failure: when the sender rejects a
// policy-approved transmission with transport.ErrBacklogged (bounded send
// queue full), the step is accounted as not transmitted — the meter records
// a suppressed step and the stored value stays stale, so the adaptive
// policy's drift term pushes it to retransmit once the queue drains. When
// the sender also implements Clock, every sampled step advances the
// collector-visible local clock regardless of the transmission decision.
func (a *Agent) Run(ctx context.Context) error {
	var ticker *time.Ticker
	if a.cfg.Interval > 0 {
		ticker = time.NewTicker(a.cfg.Interval)
		defer ticker.Stop()
	}
	for step := 1; a.cfg.MaxSteps == 0 || step <= a.cfg.MaxSteps; step++ {
		if ticker != nil {
			select {
			case <-ctx.Done():
				return nil
			case <-ticker.C:
			}
		} else if ctx.Err() != nil {
			return nil
		}
		x, ok := a.cfg.Source(step)
		if !ok {
			return nil
		}
		if a.clock != nil {
			a.clock.Advance(step)
		}
		transmitNow := a.cfg.Policy.Decide(step, x, a.stored)
		if transmitNow {
			switch err := a.cfg.Sender.Send(step, x); {
			case err == nil:
				a.stored = append(a.stored[:0], x...)
			case errors.Is(err, transport.ErrBacklogged), errors.Is(err, transport.ErrBackoff):
				// Transient: the send queue is full, or the reconnecting
				// client is riding out a collector outage. Either way the
				// step counts as suppressed and the loop goes on.
				transmitNow = false
				a.dropped++
			default:
				return fmt.Errorf("agent: node %d step %d: %w", a.cfg.Node, step, err)
			}
		}
		a.meter.Observe(transmitNow)
	}
	return nil
}

// ReplaySource adapts a dense measurement matrix (steps × resources) into a
// Source that ends after the last row.
func ReplaySource(rows [][]float64) Source {
	return func(step int) ([]float64, bool) {
		if step < 1 || step > len(rows) {
			return nil, false
		}
		return rows[step-1], true
	}
}

// LoopSource adapts a dense measurement matrix into a Source that wraps
// around forever.
func LoopSource(rows [][]float64) Source {
	return func(step int) ([]float64, bool) {
		if len(rows) == 0 {
			return nil, false
		}
		return rows[(step-1)%len(rows)], true
	}
}
