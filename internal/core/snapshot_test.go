package core

import (
	"errors"
	"math"
	"math/rand/v2"
	"sync"
	"testing"
)

// noisyStep returns N two-resource measurements wandering around two group
// levels, deterministic per (step, node).
func noisyStep(rng *rand.Rand, n int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		level := 0.25
		if i >= n/2 {
			level = 0.75
		}
		x[i] = []float64{
			math.Min(1, math.Max(0, level+0.05*rng.NormFloat64())),
			math.Min(1, math.Max(0, 1-level+0.05*rng.NormFloat64())),
		}
	}
	return x
}

func newSnapshotSystem(t *testing.T, horizon int) *System {
	t.Helper()
	s, err := NewSystem(Config{
		Nodes: 12, Resources: 2, K: 2, InitialCollection: 20, RetrainEvery: 15,
		MPrime: 3, Policy: alwaysPolicy, Seed: 3, SnapshotHorizon: horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSnapshotDisabledByDefault(t *testing.T) {
	t.Parallel()
	s, err := NewSystem(Config{Nodes: 4, K: 2, Policy: alwaysPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(twoGroupStep(4, 0.2, 0.8)); err != nil {
		t.Fatal(err)
	}
	if s.Snapshot() != nil {
		t.Fatal("Snapshot must be nil when SnapshotHorizon is 0")
	}
}

func TestSnapshotHorizonValidation(t *testing.T) {
	t.Parallel()
	_, err := NewSystem(Config{Nodes: 4, K: 2, SnapshotHorizon: -1})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}

func TestSnapshotForecastMatchesSystemForecast(t *testing.T) {
	t.Parallel()
	s := newSnapshotSystem(t, 8)
	rng := rand.New(rand.NewPCG(11, 0))
	for step := 0; step < 40; step++ {
		if _, err := s.Step(noisyStep(rng, 12)); err != nil {
			t.Fatal(err)
		}
		snap := s.Snapshot()
		if snap == nil {
			t.Fatal("snapshot must be published after every step")
		}
		if snap.Generation() != uint64(step+1) || snap.Steps() != step+1 {
			t.Fatalf("gen=%d steps=%d at step %d", snap.Generation(), snap.Steps(), step+1)
		}
		if !snap.Ready() {
			continue
		}
		for _, h := range []int{1, 3, 8} {
			direct, err := s.Forecast(h)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				served, err := snap.Forecast(h, workers)
				if err != nil {
					t.Fatal(err)
				}
				for hi := range direct {
					for i := range direct[hi] {
						for d := range direct[hi][i] {
							if direct[hi][i][d] != served[hi][i][d] {
								t.Fatalf("step %d h=%d workers=%d: snapshot forecast [%d][%d][%d]=%v, system says %v",
									step+1, h, workers, hi, i, d, served[hi][i][d], direct[hi][i][d])
							}
						}
					}
				}
			}
		}
	}
	if !s.Ready() {
		t.Fatal("system never became ready")
	}
}

func TestSnapshotIsolationFromLaterSteps(t *testing.T) {
	t.Parallel()
	s := newSnapshotSystem(t, 4)
	rng := rand.New(rand.NewPCG(13, 0))
	for step := 0; step < 25; step++ {
		if _, err := s.Step(noisyStep(rng, 12)); err != nil {
			t.Fatal(err)
		}
	}
	old := s.Snapshot()
	before, err := old.Forecast(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	z0 := old.Latest(0)
	for step := 0; step < 10; step++ {
		if _, err := s.Step(noisyStep(rng, 12)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Snapshot() == old {
		t.Fatal("later steps must publish new snapshots")
	}
	after, err := old.Forecast(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for hi := range before {
		for i := range before[hi] {
			for d := range before[hi][i] {
				if before[hi][i][d] != after[hi][i][d] {
					t.Fatalf("old snapshot's forecast changed at [%d][%d][%d]", hi, i, d)
				}
			}
		}
	}
	for d, v := range old.Latest(0) {
		if v != z0[d] {
			t.Fatal("old snapshot's stored measurement changed")
		}
	}
}

func TestSnapshotErrorsAndAccessors(t *testing.T) {
	t.Parallel()
	s := newSnapshotSystem(t, 4)
	rng := rand.New(rand.NewPCG(17, 0))
	if _, err := s.Step(noisyStep(rng, 12)); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Ready() {
		t.Fatal("snapshot before warmup must not be ready")
	}
	if _, err := snap.Forecast(1, 1); !errors.Is(err, ErrNotReady) {
		t.Fatalf("want ErrNotReady, got %v", err)
	}
	for s.Steps() < 20 {
		if _, err := s.Step(noisyStep(rng, 12)); err != nil {
			t.Fatal(err)
		}
	}
	snap = s.Snapshot()
	if !snap.Ready() {
		t.Fatal("snapshot after warmup must be ready")
	}
	if _, err := snap.Forecast(0, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("h=0: want ErrBadInput, got %v", err)
	}
	if _, err := snap.Forecast(5, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("h>max: want ErrBadInput, got %v", err)
	}
	if snap.MaxHorizon() != 4 || snap.Nodes() != 12 || snap.Resources() != 2 ||
		snap.Trackers() != 2 || snap.Clusters() != 2 {
		t.Fatal("snapshot shape accessors disagree with config")
	}
	if got := snap.Assignment(0, 0); got < 0 || got >= 2 {
		t.Fatalf("assignment out of range: %d", got)
	}
	if snap.Assignment(2, 0) != -1 || snap.Assignment(0, 99) != -1 {
		t.Fatal("out-of-range assignment must be -1")
	}
	if snap.Latest(99) != nil || snap.Latest(-1) != nil {
		t.Fatal("out-of-range Latest must be nil")
	}
	if len(snap.Latest(3)) != 2 {
		t.Fatal("Latest must return the d-dimensional stored row")
	}
	if c := snap.Centroids(0); len(c) != 2 || len(c[0]) != 1 {
		t.Fatalf("centroids shape %v", c)
	}
	if snap.Centroids(5) != nil {
		t.Fatal("out-of-range Centroids must be nil")
	}
	if f := snap.Frequency(0); f <= 0 || f > 1 {
		t.Fatalf("frequency %v out of (0,1]", f)
	}
	if snap.Frequency(-3) != 0 {
		t.Fatal("out-of-range Frequency must be 0")
	}
	if snap.MeanFrequency() <= 0 {
		t.Fatal("mean frequency must be positive with Always policy")
	}
}

// TestSnapshotConcurrentReaders exercises the snapshot plane under the race
// detector: one goroutine keeps stepping while many readers grab snapshots
// and forecast from them.
func TestSnapshotConcurrentReaders(t *testing.T) {
	t.Parallel()
	s, err := NewSystem(Config{
		Nodes: 16, Resources: 2, K: 2, InitialCollection: 10, RetrainEvery: 8,
		MPrime: 2, Policy: alwaysPolicy, Seed: 5, SnapshotHorizon: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(23, 0))
	for step := 0; step < 12; step++ {
		if _, err := s.Step(noisyStep(rng, 16)); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := s.Snapshot()
				if snap == nil {
					t.Error("nil snapshot after warm start")
					return
				}
				if _, err := snap.Forecast(1+r%6, 2); err != nil {
					t.Errorf("reader forecast: %v", err)
					return
				}
			}
		}(r)
	}
	for step := 0; step < 60; step++ {
		if _, err := s.Step(noisyStep(rng, 16)); err != nil {
			t.Error(err)
			break
		}
	}
	close(done)
	wg.Wait()
}
