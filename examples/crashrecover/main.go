// Command crashrecover demonstrates the durable-state plane end to end with
// a real kill -9: it runs a collector subprocess that steps a pipeline under
// internal/persist (WAL every step, background checkpoints every 25), kills
// it with SIGKILL mid-run, restarts it, and proves the recovered process
// finishes with forecasts bit-identical to an uninterrupted in-process
// reference run.
//
//	go run ./examples/crashrecover
//
// The subprocess is this same binary in -child mode; measurements are a
// deterministic waveform of the step index, so the restarted child
// regenerates exactly the inputs the killed one consumed — recovery =
// checkpoint restore + WAL replay, then identical stepping.
package main

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"time"

	"orcf/internal/core"
	"orcf/internal/forecast"
	"orcf/internal/persist"
)

const (
	nodes     = 16
	resources = 2
	steps     = 120
	horizon   = 6
)

func config() core.Config {
	return core.Config{
		Nodes:             nodes,
		Resources:         resources,
		K:                 3,
		MPrime:            3,
		InitialCollection: 30,
		RetrainEvery:      20,
		Seed:              42,
		SnapshotHorizon:   horizon,
		Model: func() forecast.Model {
			m, err := forecast.NewSES(0.3)
			if err != nil {
				panic(err)
			}
			return m
		},
	}
}

// input is the deterministic measurement waveform: a crashed run regenerates
// exactly what the killed run saw.
func input(t int) [][]float64 {
	x := make([][]float64, nodes)
	for i := range x {
		x[i] = make([]float64, resources)
		for d := range x[i] {
			v := 0.5 + 0.35*math.Sin(float64(t)*0.19+float64(i*5+d*2)*0.43)
			x[i][d] = math.Min(1, math.Max(0, v))
		}
	}
	return x
}

func main() {
	child := flag.Bool("child", false, "run as the stepping collector subprocess")
	dir := flag.String("dir", "", "state directory (child mode)")
	flag.Parse()
	if *child {
		os.Exit(runChild(*dir))
	}
	os.Exit(runParent())
}

// runChild is the collector: recover, step to completion (slowly enough to
// be killed mid-run), write the final forecast, exit.
func runChild(dir string) int {
	cfg := config()
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	mgr, err := persist.New(sys, cfg, persist.Options{Dir: dir, CheckpointEvery: 25})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	info, err := mgr.Recover(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: recovery:", err)
		return 1
	}
	defer mgr.Close()
	if info.Steps > 0 {
		fmt.Printf("child: recovered to step %d (checkpoint %d + %d WAL steps, torn tail: %v)\n",
			info.Steps, info.CheckpointStep, info.ReplayedSteps, info.TornTail)
	}
	for t := sys.Steps() + 1; t <= steps; t++ {
		if _, err := mgr.Step(input(t)); err != nil {
			fmt.Fprintf(os.Stderr, "child: step %d: %v\n", t, err)
			return 1
		}
		time.Sleep(8 * time.Millisecond) // a "real" collection cadence, killable mid-run
	}
	f, err := sys.Forecast(horizon)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	if err := persist.WriteBlobAtomic(filepath.Join(dir, "result"), persist.KindAux, buf.Bytes()); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 1
	}
	fmt.Printf("child: completed %d steps\n", steps)
	return 0
}

func runParent() int {
	// Reference: the same pipeline, uninterrupted, in-process.
	cfg := config()
	ref, err := core.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashrecover:", err)
		return 1
	}
	for t := 1; t <= steps; t++ {
		if _, err := ref.Step(input(t)); err != nil {
			fmt.Fprintln(os.Stderr, "crashrecover:", err)
			return 1
		}
	}
	want, err := ref.Forecast(horizon)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashrecover:", err)
		return 1
	}
	fmt.Printf("reference: %d uninterrupted steps, forecast horizon %d\n", steps, horizon)

	dir, err := os.MkdirTemp("", "crashrecover-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashrecover:", err)
		return 1
	}
	defer os.RemoveAll(dir)

	// Round 1: start the collector and kill -9 it mid-run.
	first := childCmd(dir)
	if err := first.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "crashrecover:", err)
		return 1
	}
	time.Sleep(450 * time.Millisecond) // past the first checkpoint, far from done
	if err := first.Process.Signal(syscall.SIGKILL); err != nil {
		fmt.Fprintln(os.Stderr, "crashrecover:", err)
		return 1
	}
	err = first.Wait()
	fmt.Printf("collector killed with SIGKILL (%v); state dir holds checkpoint + WAL tail\n", err)

	// Round 2: restart; recovery + remaining steps run to completion.
	second := childCmd(dir)
	if err := second.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "crashrecover: restarted child:", err)
		return 1
	}

	payload, err := persist.ReadBlob(filepath.Join(dir, "result"), persist.KindAux)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashrecover:", err)
		return 1
	}
	var got [][][]float64
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&got); err != nil {
		fmt.Fprintln(os.Stderr, "crashrecover:", err)
		return 1
	}
	if !reflect.DeepEqual(got, want) {
		fmt.Println("FAIL: recovered forecasts differ from the uninterrupted run")
		return 1
	}
	fmt.Printf("OK: kill -9 → restart → forecasts for all %d nodes × %d horizons are bit-identical\n",
		nodes, horizon)
	return 0
}

// childCmd builds the -child invocation of this same binary.
func childCmd(dir string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], "-child", "-dir", dir)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	return cmd
}
