// Package orcf (Online Resource Collection and Forecasting) is the public
// API of this repository: a Go implementation of "Online Collection and
// Forecasting of Resource Utilization in Large-Scale Distributed Systems"
// (Tuor, Wang, Leung, Ko — ICDCS 2019).
//
// The pipeline monitors N machines from one central node under a
// transmission-frequency budget:
//
//  1. each machine decides per time step whether to upload its measurement
//     (Lyapunov drift-plus-penalty, §V-A of the paper);
//  2. the central node compresses the stored measurements into K evolving
//     clusters whose identities persist over time (§V-B);
//  3. one forecasting model per cluster (sample-and-hold, ARIMA, or LSTM)
//     predicts future centroids, and per-node forecasts are reconstructed
//     as centroid + per-node offset (§V-C).
//
// Minimal usage:
//
//	sys, err := orcf.New(nodes, 2,
//		orcf.WithBudget(0.3),
//		orcf.WithClusters(3),
//		orcf.WithARIMA(orcf.DefaultARIMAGrid()))
//	...
//	for t := 0; t < steps; t++ {
//		if _, err := sys.Step(measurements[t]); err != nil { ... }
//		if sys.Ready() {
//			f, err := sys.Forecast(5) // f[h][node][resource]
//			...
//		}
//	}
package orcf

import (
	"errors"
	"fmt"
	"math"

	"orcf/internal/alert"
	"orcf/internal/cluster"
	"orcf/internal/core"
	"orcf/internal/forecast"
	"orcf/internal/sim"
	"orcf/internal/trace"
	"orcf/internal/transmit"
)

// Re-exported types: external consumers use these through the root package
// (the implementing packages are internal).
type (
	// StepResult reports one processed time step (transmissions and the
	// per-resource clustering outcome).
	StepResult = core.StepResult
	// ResourceStep is the clustering outcome for one resource tracker.
	ResourceStep = core.ResourceStep
	// Snapshot is the immutable read-only view published per step when
	// snapshots are enabled (WithSnapshotHorizon); see System.Snapshot.
	Snapshot = core.Snapshot
	// Roster is an immutable view of fleet membership (stable node IDs and
	// per-slot liveness); see System.Roster and Snapshot.Roster.
	Roster = core.Roster
	// Dataset is a dense Steps × Nodes × Resources measurement tensor.
	Dataset = trace.Dataset
	// GeneratorConfig parameterizes synthetic trace generation.
	GeneratorConfig = trace.GeneratorConfig
	// TracePreset identifies one of the built-in dataset imitations.
	TracePreset = trace.Preset
	// LSTMConfig parameterizes the LSTM forecaster.
	LSTMConfig = forecast.LSTMConfig
	// ARIMAGrid is the ARIMA hyper-parameter search space.
	ARIMAGrid = forecast.Grid
	// Model is a univariate forecasting model.
	Model = forecast.Model
	// ModelCandidate is one named entry of a model zoo (see WithModelZoo).
	ModelCandidate = forecast.Candidate
	// SelectionConfig tunes online champion/challenger selection
	// (see WithSelection).
	SelectionConfig = forecast.SelectionConfig
	// SelectionInfo is a point-in-time view of one tracker's selection state
	// (see System.ModelSelection).
	SelectionInfo = forecast.SelectionInfo
	// EvalConfig controls an evaluation run over a dataset.
	EvalConfig = sim.Config
	// EvalResult is the outcome of an evaluation run.
	EvalResult = sim.Result
	// AlertRule is one alerting rule evaluated against published snapshots
	// (see WithAlertRules).
	AlertRule = alert.Rule
	// AlertRuleSet is a validated collection of alert rules plus set-wide
	// settings; build one in Go or parse a file with ParseAlertRules.
	AlertRuleSet = alert.RuleSet
	// AlertEvent is one alert transition (fire or resolve) delivered to sinks.
	AlertEvent = alert.Event
	// AlertSink receives alert transition events (see WithAlertSink).
	AlertSink = alert.Sink
	// ActiveAlert is one currently firing alert instance (see System.Alerts).
	ActiveAlert = alert.Active
	// AlertStats is the alert engine's cumulative accounting.
	AlertStats = alert.Stats
	// Recommendation is one per-cluster autoscaling proposal
	// (see System.Recommend).
	Recommendation = alert.Recommendation
	// RecommendConfig parameterizes System.Recommend (zero value: horizon 1,
	// target utilization band [0.3, 0.7]).
	RecommendConfig = alert.RecommendConfig
)

// ErrBadOption reports an invalid option combination.
var ErrBadOption = errors.New("orcf: invalid option")

// config aggregates everything New assembles: the core pipeline
// configuration plus the optional alert plane riding on its snapshots.
type config struct {
	core.Config
	rules *alert.RuleSet
	sinks []alert.Sink
}

// Option configures New.
type Option func(*config) error

// WithClusters sets K, the number of clusters and forecasting models
// (paper default 3).
func WithClusters(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("orcf: K=%d: %w", k, ErrBadOption)
		}
		c.K = k
		return nil
	}
}

// WithBudget installs the paper's adaptive transmission policy with
// long-run frequency budget b ∈ [0,1] on every node (paper default 0.3).
func WithBudget(b float64) Option {
	return func(c *config) error {
		c.Policy = func(int) (transmit.Policy, error) {
			return transmit.NewAdaptive(transmit.AdaptiveConfig{Budget: b})
		}
		return nil
	}
}

// WithAdaptivePolicy installs the adaptive policy with explicit Lyapunov
// control parameters V0 and γ (paper defaults 1e-12 and 0.65).
func WithAdaptivePolicy(budget, v0, gamma float64) Option {
	return func(c *config) error {
		c.Policy = func(int) (transmit.Policy, error) {
			return transmit.NewAdaptive(transmit.AdaptiveConfig{Budget: budget, V0: v0, Gamma: gamma})
		}
		return nil
	}
}

// WithUniformSampling installs the uniform-sampling baseline at frequency b.
func WithUniformSampling(b float64) Option {
	return func(c *config) error {
		c.Policy = func(int) (transmit.Policy, error) {
			return transmit.NewUniform(b)
		}
		return nil
	}
}

// WithAlwaysTransmit disables collection filtering (B = 1).
func WithAlwaysTransmit() Option {
	return func(c *config) error {
		c.Policy = func(int) (transmit.Policy, error) { return transmit.Always{}, nil }
		return nil
	}
}

// WithPolicyFactory installs a custom per-node transmission policy.
func WithPolicyFactory(f core.PolicyFactory) Option {
	return func(c *config) error {
		if f == nil {
			return fmt.Errorf("orcf: nil policy factory: %w", ErrBadOption)
		}
		c.Policy = f
		return nil
	}
}

// WithSampleAndHold uses the sample-and-hold forecaster (default).
func WithSampleAndHold() Option {
	return func(c *config) error {
		c.Model = func() forecast.Model { return forecast.NewSampleAndHold() }
		return nil
	}
}

// WithARIMA uses AICc-selected ARIMA models over the given grid.
func WithARIMA(grid ARIMAGrid) Option {
	return func(c *config) error {
		c.Model = func() forecast.Model { return forecast.NewAutoARIMA(grid) }
		return nil
	}
}

// WithAR uses a fixed-order AR(p) forecaster.
func WithAR(p int) Option {
	return func(c *config) error {
		if p < 1 {
			return fmt.Errorf("orcf: AR order %d: %w", p, ErrBadOption)
		}
		c.Model = func() forecast.Model {
			m, err := forecast.NewAR(p)
			if err != nil {
				panic(err) // unreachable: p validated above
			}
			return m
		}
		return nil
	}
}

// WithLSTM uses the two-layer LSTM forecaster.
func WithLSTM(cfg LSTMConfig) Option {
	return func(c *config) error {
		c.Model = func() forecast.Model { return forecast.NewLSTM(cfg) }
		return nil
	}
}

// WithSES uses simple exponential smoothing with the given alpha
// (0 selects the default 0.3) — the cheapest level-adaptive forecaster.
func WithSES(alpha float64) Option {
	return func(c *config) error {
		if _, err := forecast.NewSES(alpha); err != nil {
			return fmt.Errorf("orcf: %w", err)
		}
		c.Model = func() forecast.Model {
			m, err := forecast.NewSES(alpha)
			if err != nil {
				panic(err) // unreachable: validated above
			}
			return m
		}
		return nil
	}
}

// WithHolt uses damped Holt linear-trend smoothing (zeros select the
// defaults α=0.3, β=0.1, φ=0.98).
func WithHolt(alpha, beta, phi float64) Option {
	return func(c *config) error {
		if _, err := forecast.NewHolt(alpha, beta, phi); err != nil {
			return fmt.Errorf("orcf: %w", err)
		}
		c.Model = func() forecast.Model {
			m, err := forecast.NewHolt(alpha, beta, phi)
			if err != nil {
				panic(err) // unreachable: validated above
			}
			return m
		}
		return nil
	}
}

// WithHoltWinters uses additive Holt-Winters smoothing with the given
// seasonal period (e.g. 288 for daily cycles at 5-minute sampling).
func WithHoltWinters(period int) Option {
	return func(c *config) error {
		if _, err := forecast.NewHoltWinters(period, 0, 0, 0); err != nil {
			return fmt.Errorf("orcf: %w", err)
		}
		c.Model = func() forecast.Model {
			m, err := forecast.NewHoltWinters(period, 0, 0, 0)
			if err != nil {
				panic(err) // unreachable: validated above
			}
			return m
		}
		return nil
	}
}

// WithModelZoo runs a model zoo instead of a single pinned family: one model
// per registered family name is fitted per (cluster, resource) cell, every
// candidate's 1-step forecasts are scored online against the next observed
// centroid, and forecasts are served by the per-cell champion, which a
// challenger dethrones only after beating it by a margin for a sustained
// streak of evaluations (hysteresis; tune with WithSelection). Names must be
// registered families (see ModelFamilies). Mutually exclusive with the
// single-model options (WithSES, WithARIMA, WithModelBuilder, ...).
func WithModelZoo(names ...string) Option {
	return func(c *config) error {
		zoo, err := forecast.Zoo(names...)
		if err != nil {
			return fmt.Errorf("%w: %w", ErrBadOption, err)
		}
		c.Zoo = zoo
		return nil
	}
}

// WithSelection tunes the champion/challenger selector used by WithModelZoo
// (zero fields select the defaults: window 64, margin 0, streak 3, metric
// "mae"). Ignored unless WithModelZoo is also set.
func WithSelection(cfg SelectionConfig) Option {
	return func(c *config) error {
		if err := cfg.WithDefaults().Validate(); err != nil {
			return fmt.Errorf("%w: %w", ErrBadOption, err)
		}
		c.Selection = cfg
		return nil
	}
}

// ModelFamilies returns the sorted names of every registered forecasting
// family usable with WithModelZoo.
func ModelFamilies() []string { return forecast.Families() }

// ModelSelection returns a deep copy of one tracker's champion/challenger
// state, or nil when the system runs a single pinned family or the tracker
// index is out of range. Call it between Steps (for lock-free concurrent
// reads use Snapshot.ModelSelection).
func (s *System) ModelSelection(tracker int) *SelectionInfo {
	return s.inner.ModelSelection(tracker)
}

// WithModelBuilder installs a custom forecasting model factory.
func WithModelBuilder(b forecast.Builder) Option {
	return func(c *config) error {
		if b == nil {
			return fmt.Errorf("orcf: nil model builder: %w", ErrBadOption)
		}
		c.Model = b
		return nil
	}
}

// WithSimilarityLookback sets M, the cluster-matching look-back of eq. (10)
// (paper default 1).
func WithSimilarityLookback(m int) Option {
	return func(c *config) error {
		if m < 1 {
			return fmt.Errorf("orcf: M=%d: %w", m, ErrBadOption)
		}
		c.M = m
		return nil
	}
}

// WithMembershipLookback sets M′, the look-back for membership forecasting
// and offsets (paper default 5). Zero selects "current step only".
func WithMembershipLookback(mPrime int) Option {
	return func(c *config) error {
		if mPrime < 0 {
			return fmt.Errorf("orcf: M'=%d: %w", mPrime, ErrBadOption)
		}
		if mPrime == 0 {
			c.MPrime = -1
		} else {
			c.MPrime = mPrime
		}
		return nil
	}
}

// WithJaccardSimilarity switches cluster matching to the Jaccard index
// (the Fig. 11 comparison); the default is the paper's proposed measure.
func WithJaccardSimilarity() Option {
	return func(c *config) error {
		c.Similarity = cluster.SimilarityJaccard
		return nil
	}
}

// WithJointClustering clusters full d-dimensional measurement vectors
// instead of per-resource scalars (the Table I ablation).
func WithJointClustering() Option {
	return func(c *config) error {
		c.JointClustering = true
		return nil
	}
}

// WithTrainingSchedule sets the initial collection length and retraining
// period (paper defaults 1000 and 288).
func WithTrainingSchedule(initialCollection, retrainEvery int) Option {
	return func(c *config) error {
		if initialCollection < 1 || retrainEvery < 1 {
			return fmt.Errorf("orcf: schedule %d/%d: %w", initialCollection, retrainEvery, ErrBadOption)
		}
		c.InitialCollection = initialCollection
		c.RetrainEvery = retrainEvery
		return nil
	}
}

// WithFitWindow caps the history used per model fit (0 = all history).
func WithFitWindow(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("orcf: fit window %d: %w", n, ErrBadOption)
		}
		c.FitWindow = n
		return nil
	}
}

// WithAbsenceTimeout enables automatic fleet-member eviction: a member that
// produces no report (a nil row in Step's input) for this many consecutive
// steps departs, freeing its slot for later joiners. Zero (the default)
// disables auto-eviction; membership then changes only through
// AddNodes/RemoveNodes. See System.AddNodes for the elastic-fleet model.
func WithAbsenceTimeout(steps int) Option {
	return func(c *config) error {
		if steps < 0 {
			return fmt.Errorf("orcf: absence timeout %d: %w", steps, ErrBadOption)
		}
		c.AbsenceTimeout = steps
		return nil
	}
}

// WithSeed fixes the random seed for clustering, making runs reproducible.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.Seed = seed
		return nil
	}
}

// WithWorkers bounds the worker pool used for per-resource clustering, model
// (re)training, and per-node forecast reconstruction. Zero (the default)
// means GOMAXPROCS; 1 forces the fully serial path. Forecasts, clusterings,
// and every other output are bit-identical for any worker count — the knob
// only trades wall-clock time for cores.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("orcf: workers %d: %w", n, ErrBadOption)
		}
		c.Workers = n
		return nil
	}
}

// WithSnapshotHorizon enables the concurrent read plane: after every
// successful Step the system publishes an immutable Snapshot (look-back
// window, latest measurements, memberships, transmit frequencies, and
// centroid forecasts up to horizon h) that any number of readers may query
// lock-free while stepping continues — the substrate of the internal/serve
// query plane and cmd/forecastd. Zero (the default) disables publishing and
// keeps the ingest path allocation-free.
func WithSnapshotHorizon(h int) Option {
	return func(c *config) error {
		if h < 0 {
			return fmt.Errorf("orcf: snapshot horizon %d: %w", h, ErrBadOption)
		}
		c.SnapshotHorizon = h
		return nil
	}
}

// WithIncrementalRefit enables warm-started clustering refits: when fleet
// membership is unchanged and reassigning the stored measurements to the
// previous step's centroids moves at most churn·N members, the step reuses
// that assignment instead of running a full K-means refit — the dominant
// per-step cost at large N. Warm steps skip the K-means RNG draws, so runs
// with this enabled are not bit-identical to runs without it (exported
// states are fingerprinted accordingly); every warm step is itself pinned
// bit-identical to the full refit decision procedure by the differential
// test plane in internal/cluster.
//
// churn 0 selects the default acceptance threshold (0.25); negative forces a
// full refit every step, which is bit-identical to leaving the option off.
func WithIncrementalRefit(churn float64) Option {
	return func(c *config) error {
		if math.IsNaN(churn) {
			return fmt.Errorf("orcf: churn threshold NaN: %w", ErrBadOption)
		}
		c.IncrementalRefit = true
		c.IncrementalChurn = churn
		return nil
	}
}

// WithSnapshotKeep bounds snapshot retention so the per-step published deep
// copies can be recycled through an arena: a look-back slot that drops out
// of the published window is reused once more than keep further generations
// have been published. Readers must finish with a Snapshot of generation g
// before generation g+keep is published. Zero (the default) never recycles —
// every Snapshot stays valid forever — at the cost of one window-slot
// allocation per step. Requires WithSnapshotHorizon.
func WithSnapshotKeep(keep int) Option {
	return func(c *config) error {
		if keep < 0 {
			return fmt.Errorf("orcf: snapshot keep %d: %w", keep, ErrBadOption)
		}
		c.SnapshotKeep = keep
		return nil
	}
}

// WithAlertRules attaches the alerting plane: after every successful Step
// the rules are evaluated against the published snapshot (threshold and
// trend rules over per-cluster centroid and per-node forecasts), driving
// firing→resolved state machines with hysteresis and delivering transition
// events to any sinks added with WithAlertSink. Requires WithSnapshotHorizon
// at least as large as the largest rule horizon. The rule set is validated
// by New and must not be mutated afterwards.
func WithAlertRules(rs *AlertRuleSet) Option {
	return func(c *config) error {
		if rs == nil {
			return fmt.Errorf("orcf: nil alert rule set: %w", ErrBadOption)
		}
		c.rules = rs
		return nil
	}
}

// WithAlertSink adds one transition-event sink to the alerting plane (for
// example alert.NewLogSink or a webhook sink); events are delivered in rule
// order at each evaluated step. Requires WithAlertRules.
func WithAlertSink(s AlertSink) Option {
	return func(c *config) error {
		if s == nil {
			return fmt.Errorf("orcf: nil alert sink: %w", ErrBadOption)
		}
		c.sinks = append(c.sinks, s)
		return nil
	}
}

// ParseAlertRules parses, defaults, and validates a JSON alert rules
// document (the same format cmd/forecastd's -rules flag loads; see
// docs/OPERATIONS.md).
func ParseAlertRules(data []byte) (*AlertRuleSet, error) { return alert.ParseRules(data) }

// System is the public handle to the collection-and-forecasting pipeline.
type System struct {
	inner  *core.System
	alerts *alert.Engine
}

// New builds a pipeline for the given number of nodes and resource types,
// applying the paper's defaults (§VI-A2) for anything not overridden:
// adaptive policy at B=0.3, K=3, M=1, M′=5, scalar per-resource clustering,
// sample-and-hold forecasting, warm-up 1000 steps, retraining every 288.
func New(nodes, resources int, opts ...Option) (*System, error) {
	cfg := config{Config: core.Config{Nodes: nodes, Resources: resources}}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	var engine *alert.Engine
	switch {
	case cfg.rules != nil:
		if cfg.SnapshotHorizon == 0 {
			return nil, fmt.Errorf("orcf: WithAlertRules requires WithSnapshotHorizon: %w", ErrBadOption)
		}
		var err error
		engine, err = alert.New(alert.Config{
			Rules:      cfg.rules,
			Sinks:      cfg.sinks,
			Workers:    cfg.Workers,
			MaxHorizon: cfg.SnapshotHorizon,
		})
		if err != nil {
			return nil, err
		}
	case len(cfg.sinks) > 0:
		return nil, fmt.Errorf("orcf: WithAlertSink requires WithAlertRules: %w", ErrBadOption)
	}
	inner, err := core.NewSystem(cfg.Config)
	if err != nil {
		return nil, err
	}
	return &System{inner: inner, alerts: engine}, nil
}

// Step ingests the fleet's measurements for one time step: x has one row
// per slot (see Roster), where x[i] is the slot's d-dimensional measurement
// and a nil row means "no report this step" (mandatory for departed slots;
// for live members it counts toward the absence timeout). Returns what
// happened, including any members evicted this step. With WithAlertRules the
// published snapshot is then evaluated against the rules and transition
// events go to the sinks; an evaluation failure is returned alongside the
// (already applied) step result.
func (s *System) Step(x [][]float64) (*StepResult, error) {
	res, err := s.inner.Step(x)
	if err != nil || s.alerts == nil {
		return res, err
	}
	if _, aerr := s.alerts.Evaluate(s.inner.Snapshot()); aerr != nil {
		return res, aerr
	}
	return res, nil
}

// Alerts returns the currently firing alert instances sorted by rule then
// target, or nil when alerting is not configured (see WithAlertRules). Safe
// to call concurrently with Step.
func (s *System) Alerts() []ActiveAlert {
	if s.alerts == nil {
		return nil
	}
	return s.alerts.Active()
}

// AlertStats returns the alert engine's cumulative accounting; ok is false
// when alerting is not configured.
func (s *System) AlertStats() (stats AlertStats, ok bool) {
	if s.alerts == nil {
		return AlertStats{}, false
	}
	return s.alerts.Stats(), true
}

// Recommend proposes per-cluster scale-up/scale-down node deltas from the
// latest snapshot's centroid forecasts (see RecommendConfig). It requires
// WithSnapshotHorizon and a completed initial training.
func (s *System) Recommend(cfg RecommendConfig) ([]Recommendation, error) {
	snap := s.inner.Snapshot()
	if snap == nil {
		return nil, core.ErrNotReady
	}
	return alert.Recommend(snap, cfg)
}

// AddNodes joins new fleet members under the given stable IDs: each gets a
// fresh policy and an empty, NaN-masked history, participates in clustering
// from its first stored measurement, and serves forecasts once its
// look-back window accumulates presence — all without perturbing existing
// members. Call it between Steps.
func (s *System) AddNodes(ids ...int) error { return s.inner.AddNodes(ids...) }

// RemoveNodes departs live members immediately, retiring their IDs and
// recycling their slots for later joiners. A removed ID may rejoin later
// via AddNodes and starts from a blank history. Call it between Steps.
func (s *System) RemoveNodes(ids ...int) error { return s.inner.RemoveNodes(ids...) }

// Roster returns an immutable view of current fleet membership.
func (s *System) Roster() *Roster { return s.inner.Roster() }

// Members returns the live members' stable IDs in slot order.
func (s *System) Members() []int { return s.inner.Members() }

// Ready reports whether the forecasting models finished initial training.
func (s *System) Ready() bool { return s.inner.Ready() }

// Forecast returns per-node forecasts for horizons 1..h as
// result[h-1][node][resource].
func (s *System) Forecast(h int) ([][][]float64, error) { return s.inner.Forecast(h) }

// Stored returns the central node's current measurement copies (z_t).
func (s *System) Stored() [][]float64 { return s.inner.Stored() }

// Snapshot returns the latest published read-only view, or nil when
// snapshots are disabled (see WithSnapshotHorizon) or no step has completed.
// Safe to call concurrently with Step.
func (s *System) Snapshot() *Snapshot { return s.inner.Snapshot() }

// Frequency returns the realized transmission frequency of one node.
func (s *System) Frequency(node int) float64 { return s.inner.Frequency(node) }

// MeanFrequency returns the average realized transmission frequency.
func (s *System) MeanFrequency() float64 { return s.inner.MeanFrequency() }

// CentroidSeries returns the centroid history of (tracker, cluster, dim).
func (s *System) CentroidSeries(tracker, clusterIdx, dim int) []float64 {
	return s.inner.CentroidSeries(tracker, clusterIdx, dim)
}

// Steps returns the number of processed time steps.
func (s *System) Steps() int { return s.inner.Steps() }

// RefitStats reports how many per-tracker clustering steps were warm-started
// versus fully refit (warm is always 0 unless WithIncrementalRefit is set).
func (s *System) RefitStats() (warm, full int) { return s.inner.RefitStats() }

// Evaluate drives the system over a dataset and scores RMSE per horizon,
// the h=0 staleness error, and (optionally) the intermediate clustering
// RMSE. The system must be freshly constructed for meaningful results.
func (s *System) Evaluate(ds *Dataset, cfg EvalConfig) (*EvalResult, error) {
	return sim.Run(s.inner, ds, cfg)
}

// GenerateTrace produces a synthetic dataset (see GeneratorConfig).
func GenerateTrace(cfg GeneratorConfig) (*Dataset, error) { return trace.Generate(cfg) }

// AlibabaLike returns the Alibaba-2018-like preset (see internal/trace).
func AlibabaLike() TracePreset { return trace.AlibabaLike() }

// BitbrainsLike returns the Bitbrains-GWA-T-12-like preset.
func BitbrainsLike() TracePreset { return trace.BitbrainsLike() }

// GoogleLike returns the Google-cluster-usage-v2-like preset.
func GoogleLike() TracePreset { return trace.GoogleLike() }

// SensorLike returns the Intel-Berkeley-sensor-like preset.
func SensorLike() TracePreset { return trace.SensorLike() }

// DefaultARIMAGrid returns a reduced ARIMA search grid that is fast enough
// for interactive use.
func DefaultARIMAGrid() ARIMAGrid { return forecast.DefaultGrid() }

// PaperARIMAGrid returns the full grid searched in the paper (§VI-A3) with
// the given seasonal period.
func PaperARIMAGrid(season int) ARIMAGrid { return forecast.PaperGrid(season) }
