// Command nodeagent simulates one (or several) local machines: it replays a
// synthetic utilization trace through the adaptive transmission policy and
// streams the surviving measurements to a collectd instance over TCP.
//
// Usage:
//
//	nodeagent -collector 127.0.0.1:7777 -node 0 -count 8 -budget 0.3 -tick 100ms
//
// runs agents for nodes 0..7, each with an independent trace column and its
// own Lyapunov policy instance.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"orcf/internal/agent"
	"orcf/internal/trace"
	"orcf/internal/transmit"
	"orcf/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		collector = flag.String("collector", "127.0.0.1:7777", "collectd address")
		firstNode = flag.Int("node", 0, "first node id")
		count     = flag.Int("count", 1, "number of agents to run")
		budget    = flag.Float64("budget", 0.3, "transmission frequency budget B")
		tick      = flag.Duration("tick", 100*time.Millisecond, "measurement period")
		steps     = flag.Int("steps", 0, "stop after this many steps (0 = run forever)")
		seed      = flag.Uint64("seed", 1, "trace seed (shared across agents)")
	)
	flag.Parse()
	if *count < 1 {
		fmt.Fprintln(os.Stderr, "nodeagent: -count must be ≥ 1")
		return 2
	}

	// One shared trace: agent i replays column firstNode+i, looping if it
	// outruns the generated length.
	genSteps := *steps
	if genSteps == 0 {
		genSteps = 5000
	}
	ds, err := trace.GoogleLike().Generate(*firstNode+*count, genSteps, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nodeagent:", err)
		return 1
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		cancel()
	}()

	var wg sync.WaitGroup
	errs := make(chan error, *count)
	for i := 0; i < *count; i++ {
		node := *firstNode + i
		client, err := transport.Dial(*collector, node)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nodeagent: node %d: %v\n", node, err)
			cancel()
			break
		}
		policy, err := transmit.NewAdaptive(transmit.AdaptiveConfig{Budget: *budget})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nodeagent: node %d: %v\n", node, err)
			_ = client.Close()
			cancel()
			break
		}
		rows := make([][]float64, ds.Steps())
		for s := 0; s < ds.Steps(); s++ {
			rows[s] = ds.At(s, node)
		}
		a, err := agent.New(agent.Config{
			Node:     node,
			Policy:   policy,
			Source:   agent.LoopSource(rows),
			Sender:   client,
			Interval: *tick,
			MaxSteps: *steps,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nodeagent: node %d: %v\n", node, err)
			_ = client.Close()
			cancel()
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer client.Close()
			err := a.Run(ctx)
			if err != nil {
				errs <- err
				cancel()
				return
			}
			fmt.Printf("node %d: done after %d steps, frequency %.3f (budget %.2f)\n",
				node, a.Steps(), a.Frequency(), *budget)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Fprintln(os.Stderr, "nodeagent:", err)
		return 1
	}
	return 0
}
