package forecast

import (
	"fmt"

	"orcf/internal/mat"
)

// AR is an autoregressive model of order p fitted by ordinary least squares.
// It serves both as a fast standalone forecaster and as a correctness
// reference for the ARIMA implementation (ARIMA(p,0,0) must agree with it).
type AR struct {
	p      int
	coef   []float64 // coef[0] is the intercept, coef[i] multiplies y_{t-i}
	tail   []float64 // last p observations, most recent last
	fitted bool
}

var _ Model = (*AR)(nil)

// NewAR returns an AR(p) model; p must be ≥ 1.
func NewAR(p int) (*AR, error) {
	if p < 1 {
		return nil, fmt.Errorf("forecast: AR order %d < 1: %w", p, ErrBadInput)
	}
	return &AR{p: p}, nil
}

// Fit implements Model by solving the least-squares normal equations
// (XᵀX)β = Xᵀy with a small ridge term for numerical robustness on
// near-constant series.
func (a *AR) Fit(series []float64) error {
	if len(series) < a.p+2 {
		return fmt.Errorf("forecast: AR(%d) needs ≥ %d observations, got %d: %w",
			a.p, a.p+2, len(series), ErrBadInput)
	}
	n := len(series) - a.p
	cols := a.p + 1
	x := mat.New(n, cols)
	y := make([]float64, n)
	for t := 0; t < n; t++ {
		x.Set(t, 0, 1)
		for i := 1; i <= a.p; i++ {
			x.Set(t, i, series[a.p+t-i])
		}
		y[t] = series[a.p+t]
	}
	xt := x.T()
	xtx, err := mat.Mul(xt, x)
	if err != nil {
		return fmt.Errorf("forecast: AR normal equations: %w", err)
	}
	xtx = mat.RegularizeSPD(xtx, 1e-9)
	xty, err := mat.MulVec(xt, y)
	if err != nil {
		return fmt.Errorf("forecast: AR normal equations: %w", err)
	}
	l, err := mat.Cholesky(xtx)
	if err != nil {
		return fmt.Errorf("forecast: AR solve: %w", err)
	}
	coef, err := mat.SolveCholesky(l, xty)
	if err != nil {
		return fmt.Errorf("forecast: AR solve: %w", err)
	}
	a.coef = coef
	a.tail = append([]float64(nil), series[len(series)-a.p:]...)
	a.fitted = true
	return nil
}

// Update implements Model.
func (a *AR) Update(y float64) {
	if !a.fitted {
		return
	}
	a.tail = append(a.tail, y)
	if len(a.tail) > a.p {
		a.tail = a.tail[len(a.tail)-a.p:]
	}
}

// Forecast implements Model by iterating the AR recursion with forecasts
// substituted for unseen values.
func (a *AR) Forecast(h int) ([]float64, error) {
	if !a.fitted {
		return nil, ErrNotFitted
	}
	if h < 1 {
		return nil, fmt.Errorf("forecast: horizon %d < 1: %w", h, ErrBadInput)
	}
	hist := append([]float64(nil), a.tail...)
	out := make([]float64, h)
	for s := 0; s < h; s++ {
		v := a.coef[0]
		for i := 1; i <= a.p; i++ {
			v += a.coef[i] * hist[len(hist)-i]
		}
		out[s] = v
		hist = append(hist, v)
	}
	return out, nil
}

// Name implements Model.
func (a *AR) Name() string { return fmt.Sprintf("ar(%d)", a.p) }

// Coefficients returns the fitted parameters: intercept followed by lag
// coefficients. It returns nil before Fit.
func (a *AR) Coefficients() []float64 {
	if !a.fitted {
		return nil
	}
	return append([]float64(nil), a.coef...)
}
