package serve

// Regression for the wire-protocol overhaul: the StoreStepper's
// arrival-mirroring (central eq. 5 accounting) must be insensitive to HOW
// measurements reached the store — one v1 gob envelope at a time, or
// coalesced v2 batches. Identical store states at each tick must produce a
// bit-identical pipeline.

import (
	"reflect"
	"testing"
	"time"

	"orcf/internal/core"
	"orcf/internal/transport"
)

func tickCfg(nodes int) core.Config {
	return core.Config{
		Nodes: nodes, Resources: 2, K: 2, InitialCollection: 10,
		RetrainEvery: 15, MPrime: 3, Seed: 11, SnapshotHorizon: 4,
	}
}

func TestStoreStepperBatchedDeliveryBitIdentical(t *testing.T) {
	t.Parallel()
	const (
		nodes = 5
		steps = 30
	)

	// Reference run: measurements applied directly to a store (the
	// "unbatched, serial" expectation).
	direct := transport.NewStore()
	directStepper, err := NewStoreStepper(direct, tickCfg(nodes))
	if err != nil {
		t.Fatal(err)
	}

	// Networked run: the same measurements travel as v2 batches over TCP.
	netStore := transport.NewStore()
	collector, err := transport.NewServer(netStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := collector.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()
	netStepper, err := NewStoreStepper(netStore, tickCfg(nodes))
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*transport.BatchClient, nodes)
	for n := range clients {
		clients[n], err = transport.DialBatch(addr, n, transport.BatchOptions{
			BatchSize: 8, Linger: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer clients[n].Close()
	}

	val := func(step, node, r int) float64 {
		return float64((step*7+node*3+r)%13) / 13
	}
	for step := 1; step <= steps; step++ {
		for n := 0; n < nodes; n++ {
			v := []float64{val(step, n, 0), val(step, n, 1)}
			// A node transmits on a per-node cadence so some ticks see
			// fresh arrivals and others do not (the arrival mirror's job);
			// everyone reports at step 1 so the steppers can start.
			if step == 1 || step%(n+1) == 0 {
				direct.Apply(transport.Measurement{Node: n, Step: step, Values: append([]float64(nil), v...)})
				if err := clients[n].Send(step, v); err != nil {
					t.Fatal(err)
				}
			} else {
				direct.Advance(n, step)
				clients[n].Advance(step)
			}
		}
		// Barrier: batched delivery may lag, so wait until the networked
		// store caught up with the direct one before ticking either.
		for n := 0; n < nodes; n++ {
			if err := clients[n].Flush(); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, func() bool {
			return reflect.DeepEqual(stripValuesAliasing(netStore.Stats()), stripValuesAliasing(direct.Stats()))
		}, 5*time.Second, "networked store never converged to the direct store")

		dRes, dOK, dErr := directStepper.Tick()
		nRes, nOK, nErr := netStepper.Tick()
		if dErr != nil || nErr != nil || !dOK || !nOK {
			t.Fatalf("step %d: direct(ok=%v err=%v) net(ok=%v err=%v)", step, dOK, dErr, nOK, nErr)
		}
		if !reflect.DeepEqual(dRes, nRes) {
			t.Fatalf("step %d: batched delivery diverged from direct delivery\n direct %+v\n net    %+v",
				step, dRes, nRes)
		}
	}

	// The snapshots (and therefore every served forecast) agree too.
	dSnap, nSnap := directStepper.System().Snapshot(), netStepper.System().Snapshot()
	if dSnap == nil || nSnap == nil {
		t.Fatal("snapshots not published")
	}
	if dSnap.Generation() != nSnap.Generation() {
		t.Fatalf("snapshot generations %d vs %d", dSnap.Generation(), nSnap.Generation())
	}
}

// stripValuesAliasing normalizes Stats maps for DeepEqual: the maps are
// value-copies already, but Latest.Values are shared slices whose identity
// differs between stores while contents must match.
func stripValuesAliasing(in map[int]transport.NodeStat) map[int]transport.NodeStat {
	out := make(map[int]transport.NodeStat, len(in))
	for k, v := range in {
		v.Latest.Values = append([]float64(nil), v.Latest.Values...)
		out[k] = v
	}
	return out
}
