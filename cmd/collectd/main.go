// Command collectd is the standalone central collector: it listens for node
// agents over TCP, maintains the latest measurement per node, and
// periodically prints the dynamic clustering summary (K centroids per
// resource) built from whatever has been received so far, plus the realized
// per-node transmission frequency the store has accounted (eq. 5) — the
// central-side check that the agents' adaptive policies hold their budgets.
// For the full pipeline with forecasting and an HTTP query API, use
// cmd/forecastd instead.
//
// Usage:
//
//	collectd -listen 127.0.0.1:7777 -k 3 -resources 2 -interval 2s
//
// Pair it with cmd/nodeagent instances feeding a trace through the adaptive
// transmission policy.
//
// With -state-dir the clustering state (assignment history, centroid
// series, and the K-means RNG position) is checkpointed periodically and on
// SIGTERM, and restored on boot when the fleet size matches — so cluster
// identities survive a collector restart instead of being re-learned from
// scratch.
package main

import (
	"bytes"
	"encoding/gob"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"math"
	"math/rand/v2"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"orcf/internal/cluster"
	"orcf/internal/persist"
	"orcf/internal/transport"
)

func main() {
	os.Exit(run())
}

// trackerState is the durable clustering state of collectd: one tracker and
// RNG per resource, valid only for the recorded fleet shape and seed.
type trackerState struct {
	K, Resources int
	Seed         uint64
	TrackedNodes int
	RNGs         [][]byte
	Trackers     []*cluster.State
}

// saveInterval is how many reporting ticks pass between state saves.
const saveInterval = 15

// printFrequencies reports the realized per-node transmission frequency the
// store has accounted (eq. 5: accepted updates over the node's local step
// count), so the summary shows what the agents' budgets actually delivered
// alongside the clustering. Per-node values are listed for small fleets and
// summarized as mean/min/max for large ones.
func printFrequencies(nodes []int, stats map[int]transport.NodeStat) {
	mean, minF, maxF := 0.0, math.Inf(1), math.Inf(-1)
	for _, id := range nodes {
		f := stats[id].Frequency
		mean += f
		minF = math.Min(minF, f)
		maxF = math.Max(maxF, f)
	}
	mean /= float64(len(nodes))
	fmt.Printf("transmit | mean %.3f | min %.3f | max %.3f", mean, minF, maxF)
	if len(nodes) <= 16 {
		fmt.Print(" | per node:")
		for _, id := range nodes {
			fmt.Printf(" %d:%.2f", id, stats[id].Frequency)
		}
	}
	fmt.Println()
}

func run() int {
	var (
		listen    = flag.String("listen", "127.0.0.1:7777", "address to listen on")
		k         = flag.Int("k", 3, "number of clusters")
		resources = flag.Int("resources", 2, "measurement dimensionality")
		interval  = flag.Duration("interval", 2*time.Second, "clustering/reporting period")
		seed      = flag.Uint64("seed", 1, "clustering seed")
		stateDir  = flag.String("state-dir", "", "directory for durable clustering state (empty = in-memory only)")
		idleTmo   = flag.Duration("idle-timeout", 5*time.Minute, "drop agent connections silent for this long (0 = never)")
	)
	flag.Parse()

	var saved *trackerState
	statePath := ""
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "collectd:", err)
			return 1
		}
		statePath = filepath.Join(*stateDir, "collectd-trackers.state")
		payload, err := persist.ReadBlob(statePath, persist.KindAux)
		switch {
		case err == nil:
			st := new(trackerState)
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
				fmt.Fprintln(os.Stderr, "collectd: ignoring undecodable state:", err)
			} else {
				saved = st
			}
		case errors.Is(err, fs.ErrNotExist):
			// Fresh state dir.
		default:
			fmt.Fprintln(os.Stderr, "collectd: ignoring unreadable state:", err)
		}
	}

	store := transport.NewStore()
	srv, err := transport.NewServer(store, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		return 1
	}
	srv.SetIdleTimeout(*idleTmo)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		return 1
	}
	defer srv.Close()
	fmt.Printf("collectd listening on %s (K=%d)\n", addr, *k)

	// The dynamic tracker requires a fixed node population; when agents join
	// or leave, the trackers are rebuilt (cluster identities restart). A
	// rebuild for the fleet size the saved state was taken at restores that
	// state instead of starting over.
	var trackers []*cluster.Tracker
	var pcgs []*rand.PCG
	trackedNodes := -1
	rebuild := func(nodes int) error {
		trackers = make([]*cluster.Tracker, *resources)
		pcgs = make([]*rand.PCG, *resources)
		for r := range trackers {
			pcgs[r] = rand.NewPCG(*seed, uint64(r))
			tr, err := cluster.NewTracker(cluster.Config{K: *k}, rand.New(pcgs[r]))
			if err != nil {
				return err
			}
			trackers[r] = tr
		}
		if saved == nil || saved.K != *k || saved.Resources != *resources ||
			saved.Seed != *seed || saved.TrackedNodes != nodes {
			return nil
		}
		for r := range trackers {
			if err := trackers[r].RestoreState(saved.Trackers[r]); err != nil {
				return fmt.Errorf("restoring tracker %d: %w", r, err)
			}
			if err := pcgs[r].UnmarshalBinary(saved.RNGs[r]); err != nil {
				return fmt.Errorf("restoring rng %d: %w", r, err)
			}
		}
		fmt.Printf("collectd: resumed clustering at step %d from %s\n",
			trackers[0].Steps(), statePath)
		// One-shot: a later fleet-size flap must rebuild fresh, not rewind
		// to this boot-time state (disk already holds newer saves by then).
		saved = nil
		return nil
	}

	save := func() {
		if statePath == "" || trackers == nil {
			return
		}
		st := &trackerState{
			K: *k, Resources: *resources, Seed: *seed, TrackedNodes: trackedNodes,
			RNGs:     make([][]byte, len(trackers)),
			Trackers: make([]*cluster.State, len(trackers)),
		}
		for r, tr := range trackers {
			rng, err := pcgs[r].MarshalBinary()
			if err != nil {
				fmt.Fprintln(os.Stderr, "collectd: state save:", err)
				return
			}
			st.RNGs[r] = rng
			st.Trackers[r] = tr.ExportState()
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			fmt.Fprintln(os.Stderr, "collectd: state save:", err)
			return
		}
		if err := persist.WriteBlobAtomic(statePath, persist.KindAux, buf.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, "collectd: state save:", err)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	ticks := 0
	for {
		select {
		case <-stop:
			fmt.Println("collectd: shutting down")
			save()
			return 0
		case <-ticker.C:
			stats := store.Stats()
			// Cluster only nodes with at least one stored measurement; a
			// node known solely through heartbeats (v2 clock carriage
			// before its first accepted sample) has no value to cluster
			// yet and must not stall the loop.
			nodes := make([]int, 0, len(stats))
			for id, st := range stats {
				if len(st.Latest.Values) > 0 {
					nodes = append(nodes, id)
				}
			}
			if len(nodes) < *k {
				fmt.Printf("collectd: %d/%d nodes reporting; waiting\n", len(nodes), *k)
				continue
			}
			sort.Ints(nodes)
			if len(nodes) != trackedNodes {
				if err := rebuild(len(nodes)); err != nil {
					fmt.Fprintln(os.Stderr, "collectd:", err)
					return 1
				}
				trackedNodes = len(nodes)
				fmt.Printf("collectd: tracking %d nodes\n", trackedNodes)
			}
			ticks++
			if ticks%saveInterval == 0 {
				save()
			}
			for r := 0; r < *resources; r++ {
				points := make([][]float64, len(nodes))
				usable := true
				for i, id := range nodes {
					vals := stats[id].Latest.Values
					if r >= len(vals) {
						usable = false
						break
					}
					points[i] = []float64{vals[r]}
				}
				if !usable {
					continue
				}
				step, err := trackers[r].Update(points)
				if err != nil {
					fmt.Fprintf(os.Stderr, "collectd: clustering resource %d: %v\n", r, err)
					continue
				}
				fmt.Printf("resource %d | %d nodes | centroids:", r, len(nodes))
				for _, c := range step.Centroids {
					fmt.Printf(" %.3f", c[0])
				}
				fmt.Println()
			}
			printFrequencies(nodes, stats)
		}
	}
}
