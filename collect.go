package orcf

// Public surface of the distributed collection plane: the TCP collector,
// node-agent clients, and the per-node agent runtime. These are thin
// re-exports of internal/transport and internal/agent so that deployments
// outside this repository can run the same plane the cmd/collectd and
// cmd/nodeagent binaries use.

import (
	"orcf/internal/agent"
	"orcf/internal/transmit"
	"orcf/internal/transport"
)

type (
	// Measurement is one transmitted observation (node, step, values).
	Measurement = transport.Measurement
	// MeasurementStore holds the newest measurement per node — the central
	// node's z_t when running over the network.
	MeasurementStore = transport.Store
	// CollectorServer accepts agent connections and fills a store.
	CollectorServer = transport.Server
	// AgentClient is a node's TCP connection to the collector.
	AgentClient = transport.Client
	// ReconnectingAgentClient redials automatically across collector
	// restarts (lossy, monitoring-grade semantics).
	ReconnectingAgentClient = transport.ReconnectingClient
	// BatchAgentClient is the v2 framed-protocol client: it coalesces
	// measurements into CRC-checked batches, bounds its send queue
	// (surfacing backpressure instead of blocking), and carries the node's
	// local clock for exact central eq. 5 accounting.
	BatchAgentClient = transport.BatchClient
	// BatchOptions tunes a BatchAgentClient (batch size, linger,
	// queue bound, write deadline, compression, multiplexing).
	BatchOptions = transport.BatchOptions
	// Agent is the node-side loop: sample → policy → send.
	Agent = agent.Agent
	// AgentConfig assembles an Agent.
	AgentConfig = agent.Config
	// AgentSource produces a node's measurements per step.
	AgentSource = agent.Source
	// TransmitPolicy decides per-step transmission (§V-A).
	TransmitPolicy = transmit.Policy
)

// NewMeasurementStore returns an empty thread-safe store.
func NewMeasurementStore() *MeasurementStore { return transport.NewStore() }

// NewCollectorServer builds a collector around the store; onUpdate (may be
// nil) fires after each stored measurement.
func NewCollectorServer(store *MeasurementStore, onUpdate func(Measurement)) (*CollectorServer, error) {
	return transport.NewServer(store, onUpdate)
}

// DialCollector connects a node agent to a collector address with the v1
// per-measurement protocol.
func DialCollector(addr string, node int) (*AgentClient, error) {
	return transport.Dial(addr, node)
}

// DialBatchCollector connects a node agent with the batched v2 framed
// protocol; the zero BatchOptions selects sensible defaults.
func DialBatchCollector(addr string, node int, opts BatchOptions) (*BatchAgentClient, error) {
	return transport.DialBatch(addr, node, opts)
}

// NewReconnectingCollectorClient prepares a lazily-dialed, auto-redialing
// client for the node.
func NewReconnectingCollectorClient(addr string, node int) *ReconnectingAgentClient {
	return transport.NewReconnectingClient(addr, node)
}

// NewAgent validates and builds the node-side loop.
func NewAgent(cfg AgentConfig) (*Agent, error) { return agent.New(cfg) }

// NewAdaptiveTransmitPolicy builds the paper's Lyapunov policy for use in a
// standalone Agent (outside a full System).
func NewAdaptiveTransmitPolicy(budget float64) (TransmitPolicy, error) {
	return transmit.NewAdaptive(transmit.AdaptiveConfig{Budget: budget})
}

// ReplayMeasurements adapts a dense steps × resources matrix into an
// AgentSource that ends after the last row.
func ReplayMeasurements(rows [][]float64) AgentSource { return agent.ReplaySource(rows) }

// LoopMeasurements adapts a dense matrix into an endlessly-looping source.
func LoopMeasurements(rows [][]float64) AgentSource { return agent.LoopSource(rows) }
