package forecast

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func TestSESValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewSES(-0.1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative alpha: want ErrBadInput, got %v", err)
	}
	if _, err := NewSES(1.5); !errors.Is(err, ErrBadInput) {
		t.Fatalf("alpha > 1: want ErrBadInput, got %v", err)
	}
	m, err := NewSES(0) // default
	if err != nil {
		t.Fatal(err)
	}
	if m.alpha != 0.3 {
		t.Fatalf("default alpha = %v", m.alpha)
	}
}

func TestSESTracksLevelShift(t *testing.T) {
	t.Parallel()
	m, _ := NewSES(0.5)
	series := make([]float64, 50)
	for i := range series {
		series[i] = 0.2
	}
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f[0]-0.2) > 1e-9 || f[0] != f[2] {
		t.Fatalf("flat series forecast %v", f)
	}
	// Level shift: forecasts converge to the new level geometrically.
	for i := 0; i < 10; i++ {
		m.Update(0.8)
	}
	f, _ = m.Forecast(1)
	if math.Abs(f[0]-0.8) > 0.01 {
		t.Fatalf("post-shift forecast %v, want ≈ 0.8", f[0])
	}
}

func TestSESLifecycleErrors(t *testing.T) {
	t.Parallel()
	m, _ := NewSES(0.3)
	if _, err := m.Forecast(1); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("want ErrNotFitted, got %v", err)
	}
	if err := m.Fit(nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty fit: want ErrBadInput, got %v", err)
	}
	m.Update(0.5) // update before fit establishes the level
	f, err := m.Forecast(2)
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 0.5 {
		t.Fatalf("bootstrap level %v", f[0])
	}
	if _, err := m.Forecast(0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("h=0: want ErrBadInput, got %v", err)
	}
}

func TestHoltValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewHolt(2, 0, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("alpha > 1: want ErrBadInput, got %v", err)
	}
	if _, err := NewHolt(0, -1, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative beta: want ErrBadInput, got %v", err)
	}
	m, err := NewHolt(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit([]float64{1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("single point: want ErrBadInput, got %v", err)
	}
	if _, err := m.Forecast(1); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("want ErrNotFitted, got %v", err)
	}
}

func TestHoltExtrapolatesTrend(t *testing.T) {
	t.Parallel()
	m, _ := NewHolt(0.5, 0.3, 1.0) // undamped for exact linearity
	series := make([]float64, 100)
	for i := range series {
		series[i] = 0.1 + 0.005*float64(i)
	}
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(10)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f {
		want := 0.1 + 0.005*float64(100+i)
		if math.Abs(v-want) > 0.01 {
			t.Fatalf("trend forecast step %d = %v, want ≈ %v", i, v, want)
		}
	}
}

func TestHoltDampingBoundsLongHorizon(t *testing.T) {
	t.Parallel()
	damped, _ := NewHolt(0.5, 0.3, 0.9)
	undamped, _ := NewHolt(0.5, 0.3, 1.0)
	series := make([]float64, 60)
	for i := range series {
		series[i] = 0.01 * float64(i)
	}
	if err := damped.Fit(series); err != nil {
		t.Fatal(err)
	}
	if err := undamped.Fit(series); err != nil {
		t.Fatal(err)
	}
	fd, _ := damped.Forecast(500)
	fu, _ := undamped.Forecast(500)
	if !(fd[499] < fu[499]) {
		t.Fatalf("damped long-horizon %v should be below undamped %v", fd[499], fu[499])
	}
	// Damped forecast converges to a finite asymptote ℓ + b·φ/(1−φ).
	if fd[499] > 2 {
		t.Fatalf("damped forecast diverged: %v", fd[499])
	}
}

func TestHoltWintersValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewHoltWinters(1, 0, 0, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("period 1: want ErrBadInput, got %v", err)
	}
	if _, err := NewHoltWinters(12, 3, 0, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("alpha > 1: want ErrBadInput, got %v", err)
	}
	m, err := NewHoltWinters(12, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(make([]float64, 20)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short series: want ErrBadInput, got %v", err)
	}
	if _, err := m.Forecast(1); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("want ErrNotFitted, got %v", err)
	}
	m.Update(1) // no-op before fit
	if _, err := m.Forecast(1); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("update must not mark fitted, got %v", err)
	}
}

func TestHoltWintersCapturesSeasonality(t *testing.T) {
	t.Parallel()
	const period = 24
	rng := rand.New(rand.NewPCG(1, 1))
	n := 10 * period
	series := make([]float64, n)
	for i := range series {
		series[i] = 0.5 + 0.25*math.Sin(2*math.Pi*float64(i)/period) + 0.01*rng.NormFloat64()
	}
	m, _ := NewHoltWinters(period, 0, 0, 0)
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(period)
	if err != nil {
		t.Fatal(err)
	}
	var hwErr, holdErr float64
	last := series[n-1]
	for i := 0; i < period; i++ {
		truth := 0.5 + 0.25*math.Sin(2*math.Pi*float64(n+i)/period)
		hwErr += math.Abs(f[i] - truth)
		holdErr += math.Abs(last - truth)
	}
	if hwErr >= holdErr/2 {
		t.Fatalf("holt-winters error %v not well below hold %v", hwErr, holdErr)
	}
}

func TestHoltWintersUpdateAdvancesPhase(t *testing.T) {
	t.Parallel()
	const period = 8
	series := make([]float64, 4*period)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	m, _ := NewHoltWinters(period, 0, 0, 0)
	if err := m.Fit(series); err != nil {
		t.Fatal(err)
	}
	f1, _ := m.Forecast(1)
	m.Update(math.Sin(2 * math.Pi * float64(len(series)) / period))
	f2, _ := m.Forecast(1)
	// After consuming one observation, the 1-step forecast targets the next
	// phase, so it must move.
	if f1[0] == f2[0] {
		t.Fatal("update did not advance the seasonal phase")
	}
}

func TestSmoothingModelNames(t *testing.T) {
	t.Parallel()
	s, _ := NewSES(0.3)
	h, _ := NewHolt(0, 0, 0)
	hw, _ := NewHoltWinters(288, 0, 0, 0)
	if s.Name() == "" || h.Name() != "holt" || hw.Name() != "holt-winters[288]" {
		t.Fatalf("names: %q %q %q", s.Name(), h.Name(), hw.Name())
	}
}

// TestSmoothingModelsInEnsemble exercises the smoothing family through the
// Ensemble lifecycle, ensuring interface compliance end to end.
func TestSmoothingModelsInEnsemble(t *testing.T) {
	t.Parallel()
	builders := []Builder{
		func() Model { m, _ := NewSES(0.3); return m },
		func() Model { m, _ := NewHolt(0, 0, 0); return m },
	}
	for _, builder := range builders {
		e, err := NewEnsemble(EnsembleConfig{
			Clusters: 2, InitialCollection: 20, RetrainEvery: 50, Builder: builder,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			v := 0.3 + 0.001*float64(i)
			if err := e.Observe([][]float64{{v}, {1 - v}}); err != nil {
				t.Fatal(err)
			}
		}
		f, err := e.Forecast(3)
		if err != nil {
			t.Fatal(err)
		}
		if len(f) != 2 || len(f[0][0]) != 3 {
			t.Fatal("forecast shape wrong")
		}
	}
}
