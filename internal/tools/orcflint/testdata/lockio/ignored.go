package transport

// sendAudited carries a well-formed suppression: rule plus reason. The
// diagnostic on the next line is swallowed.
func (c *client) sendAudited(b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//orcflint:ignore lockio peer closes the conn on shutdown so the write is interruptible
	_, err := c.conn.Write(b)
	return err
}

// sendBareIgnore has a suppression with no reason: the suppression itself is
// reported and the underlying diagnostic still fires.
func (c *client) sendBareIgnore(b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// want(+1) "malformed suppression"
	//orcflint:ignore lockio
	_, err := c.conn.Write(b) // want "c.conn.Write while c.mu held"
	return err
}

// sendUnknownRule names a rule that does not exist.
func (c *client) sendUnknownRule(b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// want(+1) "suppression names unknown rule"
	//orcflint:ignore lockedio typo in the rule name
	_, err := c.conn.Write(b) // want "c.conn.Write while c.mu held"
	return err
}
