package alert

import (
	"sync"
	"testing"

	"orcf/internal/core"
)

// TestEngineConcurrentWithSteppingAndChurn drives rule evaluation, /v1/alerts
// style reads, and stats collection from many goroutines while the single
// stepping goroutine keeps publishing snapshots and churning fleet
// membership. Under -race (RACE_PKGS covers this package) it proves the
// engine's locking composes with the snapshot plane's immutability: readers
// never need the stepper's cooperation.
func TestEngineConcurrentWithSteppingAndChurn(t *testing.T) {
	t.Parallel()
	const steps = 120
	sys := newTestSystem(t, 6, func(c *core.Config) {
		c.InitialCollection = 5
	})
	engine, err := New(Config{
		Rules: &RuleSet{StepsPerHour: 1, Rules: []Rule{
			{Name: "cluster-hot", Kind: KindThreshold, Scope: ScopeCluster, Cluster: -1,
				Above: true, Threshold: 0.6, FireStreak: 2, ClearStreak: 2, ClearMargin: 0.05, Horizon: 1},
			{Name: "node-hot", Kind: KindThreshold, Scope: ScopeNode,
				Above: true, Threshold: 0.6, FireStreak: 2, ClearStreak: 2, ClearMargin: 0.05, Horizon: 3},
		}},
		Sinks: []Sink{&CollectorSink{}}, Workers: 2, MaxHorizon: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	snaps := make(chan *core.Snapshot, steps)
	var wg sync.WaitGroup

	// The one stepping goroutine: oscillating load plus join/leave churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(snaps)
		next := 100
		for i := 0; i < steps; i++ {
			v := 0.2
			if i/10%2 == 1 {
				v = 0.9
			}
			roster := sys.Roster()
			x := make([][]float64, roster.Slots())
			for s := range x {
				if _, live := roster.IDAt(s); live {
					x[s] = []float64{v}
				}
			}
			if _, err := sys.Step(x); err != nil {
				t.Error(err)
				return
			}
			switch {
			case i%15 == 7:
				if err := sys.AddNodes(next); err != nil {
					t.Error(err)
					return
				}
				next++
			case i%15 == 14 && next > 100:
				if err := sys.RemoveNodes(next - 1); err != nil {
					t.Error(err)
					return
				}
			}
			if snap := sys.Snapshot(); snap != nil {
				snaps <- snap
			}
		}
	}()

	// Evaluators race each other for the same generations (the gen guard
	// makes duplicates no-ops) while stepping continues.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for snap := range snaps {
				if _, err := engine.Evaluate(snap); err != nil {
					t.Error(err)
					return
				}
				// Re-evaluating the latest published snapshot mid-step is
				// exactly what serve-plane callers do.
				if _, err := engine.Evaluate(sys.Snapshot()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Readers poll the query-plane views concurrently with everything above.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = engine.Active()
					_ = engine.Stats()
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()
	st := engine.Stats()
	if st.Evaluations == 0 {
		t.Fatal("no evaluations happened")
	}
	if st.Firing < 0 || st.Fires < st.Resolves {
		t.Fatalf("impossible accounting: %+v", st)
	}
}
