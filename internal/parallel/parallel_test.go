package parallel

// Run this package's tests with the race detector enabled when touching the
// pool: go test -race ./internal/parallel
// (CI runs the same invocation; see the ci target in the Makefile.)

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolvesDefault(t *testing.T) {
	t.Parallel()
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{0, 1, 2, 16} {
		const n = 257
		var visits [n]atomic.Int32
		err := ForEach(workers, n, func(i int) error {
			visits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if c := visits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	t.Parallel()
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(4, -1, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n <= 0")
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	t.Parallel()
	// Indices 3 and 9 fail; the serial path and every parallel width must
	// report index 3 (items are claimed in order, so a lower failing index
	// is always started before a higher one records).
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 12, func(i int) error {
			if i == 3 || i == 9 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Fatalf("workers=%d: err = %v, want boom 3", workers, err)
		}
	}
}

func TestForEachStopsAfterFailure(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("stop")
	var ran atomic.Int32
	err := ForEach(1, 1000, func(i int) error {
		ran.Add(1)
		if i == 4 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got != 5 {
		t.Fatalf("serial path ran %d items, want 5", got)
	}
}

func TestMapReturnsOrderedResults(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if _, err := Map(4, 10, func(i int) (int, error) {
		if i >= 2 {
			return 0, fmt.Errorf("fail %d", i)
		}
		return i, nil
	}); err == nil || err.Error() != "fail 2" {
		t.Fatalf("err = %v, want fail 2", err)
	}
}

func TestForEachWorkerIDsAreDistinctScratchSlots(t *testing.T) {
	t.Parallel()
	const workers = 4
	// Per-worker scratch: each slot must only ever be touched by one
	// goroutine at a time; -race verifies the absence of sharing.
	scratch := make([][]int, workers)
	for i := range scratch {
		scratch[i] = make([]int, 1)
	}
	var total atomic.Int64
	err := ForEachWorker(workers, 500, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker id %d out of range", w)
		}
		scratch[w][0] = i // would race if worker ids were shared
		total.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 500 {
		t.Fatalf("ran %d items, want 500", total.Load())
	}
}
