package orcf_test

import (
	"context"
	"fmt"
	"log"

	"orcf"
)

// ExampleNew demonstrates the minimal pipeline: synthesize a trace, run the
// system online, and read fleet forecasts.
func ExampleNew() {
	ds, err := orcf.GenerateTrace(orcf.GeneratorConfig{
		Name: "example", Nodes: 12, Steps: 60, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := orcf.New(12, 2,
		orcf.WithAlwaysTransmit(),
		orcf.WithClusters(3),
		orcf.WithTrainingSchedule(30, 100),
		orcf.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < ds.Steps(); t++ {
		if _, err := sys.Step(ds.Data[t]); err != nil {
			log.Fatal(err)
		}
	}
	f, err := sys.Forecast(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forecast horizons: %d, nodes: %d, resources: %d\n",
		len(f), len(f[0]), len(f[0][0]))
	// Output:
	// forecast horizons: 3, nodes: 12, resources: 2
}

// ExampleNewCollectorServer shows the networked collection plane: a TCP
// collector, one agent streaming through the adaptive policy, and the
// resulting store contents.
func ExampleNewCollectorServer() {
	store := orcf.NewMeasurementStore()
	srv, err := orcf.NewCollectorServer(store, nil)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	client, err := orcf.DialCollector(addr, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	policy, err := orcf.NewAdaptiveTransmitPolicy(1.0) // B=1: send everything
	if err != nil {
		log.Fatal(err)
	}
	rows := [][]float64{{0.2, 0.4}, {0.3, 0.5}, {0.4, 0.6}}
	a, err := orcf.NewAgent(orcf.AgentConfig{
		Node:   0,
		Policy: policy,
		Source: orcf.ReplayMeasurements(rows),
		Sender: client,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	// Wait for the asynchronous server to drain the stream.
	for {
		if m, ok := store.Latest(0); ok && m.Step == len(rows) {
			fmt.Printf("node 0 latest: step %d cpu %.1f\n", m.Step, m.Values[0])
			break
		}
	}
	// Output:
	// node 0 latest: step 3 cpu 0.4
}
