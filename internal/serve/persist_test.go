package serve

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"orcf/internal/core"
	"orcf/internal/persist"
	"orcf/internal/transport"
)

// stepperEnv is one store+stepper+manager stack over a temp state dir.
type stepperEnv struct {
	store   *transport.Store
	stepper *StoreStepper
	mgr     *persist.Manager
}

func stepperConfig() core.Config {
	return core.Config{
		Nodes:             6,
		Resources:         2,
		K:                 2,
		MPrime:            3,
		InitialCollection: 12,
		RetrainEvery:      8,
		Seed:              3,
		SnapshotHorizon:   4,
	}
}

func newStepperEnv(t *testing.T, dir string) *stepperEnv {
	t.Helper()
	cfg := stepperConfig()
	store := transport.NewStore()
	stepper, err := NewStoreStepper(store, cfg)
	if err != nil {
		t.Fatalf("stepper: %v", err)
	}
	mgr, err := persist.New(stepper.System(), cfg, persist.Options{Dir: dir, CheckpointEvery: 7})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	info, err := mgr.Recover(stepper.Replay)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if info.Steps != stepper.System().Steps() {
		t.Fatalf("recovery info steps %d, system at %d", info.Steps, stepper.System().Steps())
	}
	stepper.SetLog(mgr)
	return &stepperEnv{store: store, stepper: stepper, mgr: mgr}
}

// feed applies one tick's worth of arrivals: nodes for which the seeded RNG
// decides "arrive" get a fresh measurement at agent step `tick`; the rest
// keep their stale store entry. With all=true every node reports — the
// first tick, and the reconnect burst after a collector restart.
func (e *stepperEnv) feed(t *testing.T, tick int, all bool) {
	t.Helper()
	cfg := stepperConfig()
	rng := rand.New(rand.NewPCG(17, uint64(tick)))
	for i := 0; i < cfg.Nodes; i++ {
		if !all && rng.Float64() > 0.6 {
			continue
		}
		vals := make([]float64, cfg.Resources)
		for d := range vals {
			vals[d] = 0.5 + 0.4*math.Sin(float64(tick)*0.23+float64(i*3+d))
		}
		e.store.Apply(transport.Measurement{Node: i, Step: tick, Values: vals})
	}
}

func (e *stepperEnv) tick(t *testing.T, tick int) {
	t.Helper()
	e.feed(t, tick, tick == 1)
	if _, ok, err := e.stepper.Tick(); err != nil || !ok {
		t.Fatalf("tick %d: ok=%v err=%v", tick, ok, err)
	}
}

// TestStoreStepperPersistRecovery proves the distributed path round-trips:
// arrival patterns (which drive eq. 5 frequency accounting) are recorded in
// the WAL and replayed through the arrival mirror, so a collector that
// crashes without a final checkpoint recovers bit-identical frequencies,
// memberships, and forecasts at the crash point. (Continuation equality
// past the crash is the core.System property — the transport store itself
// is ephemeral network state that agents repopulate on reconnect.)
func TestStoreStepperPersistRecovery(t *testing.T) {
	t.Parallel()
	const total, crash = 30, 19
	cfg := stepperConfig()

	ref := newStepperEnv(t, t.TempDir())
	var refFreqAtCrash []float64
	var refForecastAtCrash [][][]float64
	for i := 1; i <= total; i++ {
		ref.tick(t, i)
		if i == crash {
			for n := 0; n < cfg.Nodes; n++ {
				refFreqAtCrash = append(refFreqAtCrash, ref.stepper.System().Frequency(n))
			}
			f, err := ref.stepper.System().Forecast(3)
			if err != nil {
				t.Fatalf("ref forecast at crash: %v", err)
			}
			refForecastAtCrash = f
		}
	}

	dir := t.TempDir()
	crashed := newStepperEnv(t, dir)
	for i := 1; i <= crash; i++ {
		crashed.tick(t, i)
	}
	// Crash: no checkpoint, no close. Recovery replays the WAL through
	// StoreStepper.Replay, re-driving the arrival mirror.
	rec := newStepperEnv(t, dir)
	sys := rec.stepper.System()
	if got := sys.Steps(); got != crash {
		t.Fatalf("recovered to step %d, want %d", got, crash)
	}
	for n := 0; n < cfg.Nodes; n++ {
		if sys.Frequency(n) != refFreqAtCrash[n] {
			t.Fatalf("node %d recovered frequency %v, want %v", n, sys.Frequency(n), refFreqAtCrash[n])
		}
	}
	got, err := sys.Forecast(3)
	if err != nil {
		t.Fatalf("recovered forecast: %v", err)
	}
	if !reflect.DeepEqual(got, refForecastAtCrash) {
		t.Fatal("recovered forecast diverges from uninterrupted run at the crash point")
	}

	// The recovered collector keeps serving: agents reconnect (the empty
	// store repopulates on the first post-restart tick) and ticking resumes
	// from the recovered state.
	for i := crash + 1; i <= total; i++ {
		rec.feed(t, i, i == crash+1)
		if _, ok, err := rec.stepper.Tick(); err != nil || !ok {
			t.Fatalf("post-recovery tick %d: ok=%v err=%v", i, ok, err)
		}
	}
	if sys.Steps() != total {
		t.Fatalf("continued to step %d, want %d", sys.Steps(), total)
	}
}

// TestStatsReportPersist checks the /v1/stats persist block and the
// /metrics checkpoint gauges appear when a durability plane is attached.
func TestStatsReportPersist(t *testing.T) {
	t.Parallel()
	env := newStepperEnv(t, t.TempDir())
	for i := 1; i <= 14; i++ {
		env.tick(t, i)
	}
	if err := env.mgr.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	srv, err := New(Config{
		Source: env.stepper.System(),
		PersistStats: func() PersistStats {
			st := env.mgr.Stats()
			age := -1.0
			if !st.LastCheckpointTime.IsZero() {
				age = 0 // deterministic for the assertion below
			}
			return PersistStats{
				LastCheckpointStep:       st.LastCheckpointStep,
				LastCheckpointAgeSeconds: age,
				LastCheckpointSeconds:    Finite64(st.LastCheckpointDuration.Seconds()),
				Checkpoints:              st.Checkpoints,
				CheckpointErrors:         st.CheckpointErrors,
				CheckpointSecondsTotal:   Finite64(st.CheckpointTime.Seconds()),
				WALRecords:               st.WALRecords,
				WALBytes:                 st.WALBytes,
				WALAppendSecondsTotal:    Finite64(st.WALAppendTime.Seconds()),
				RecoveredStep:            st.RecoveredStep,
				ReplayedSteps:            st.ReplayedSteps,
			}
		},
	})
	if err != nil {
		t.Fatalf("server: %v", err)
	}

	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/stats", nil))
	var resp StatsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("stats json: %v", err)
	}
	if resp.Persist == nil {
		t.Fatal("stats response has no persist block")
	}
	if resp.Persist.LastCheckpointStep != 14 || resp.Persist.WALRecords != 14 || resp.Persist.Checkpoints < 1 {
		t.Fatalf("persist stats = %+v", resp.Persist)
	}
	if resp.Persist.WALAppendSecondsTotal <= 0 || resp.Persist.CheckpointSecondsTotal <= 0 ||
		resp.Persist.LastCheckpointSeconds <= 0 {
		t.Fatalf("persist duration stats not flowing: %+v", resp.Persist)
	}

	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, metric := range []string{
		"orcf_checkpoints_total", "orcf_last_checkpoint_step 14",
		"orcf_wal_records_total 14", "orcf_recovered_step 0",
		"orcf_last_checkpoint_seconds", "orcf_checkpoint_seconds_total",
		"orcf_wal_append_seconds_total",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("metrics output missing %q:\n%s", metric, body)
		}
	}
}

// TestStatsOmitPersistWhenDetached pins the nil-config behaviour: no
// persist block, no checkpoint metrics.
func TestStatsOmitPersistWhenDetached(t *testing.T) {
	t.Parallel()
	srv, err := New(Config{Source: SourceFunc(func() *core.Snapshot { return nil })})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/stats", nil))
	if strings.Contains(rr.Body.String(), "persist") {
		t.Fatalf("detached stats mention persist: %s", rr.Body.String())
	}
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rr.Body.String(), "orcf_checkpoints_total") {
		t.Fatal("detached metrics report checkpoint counters")
	}
}
