package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the handler tree for the opt-in debug server daemons hang
// behind -debug-addr:
//
//	/debug/pprof/*   runtime profiles (CPU, heap, goroutine, trace, ...)
//	/debug/vars      expvar JSON (cmdline, memstats)
//	/debug/obs       every registered series as a JSON array of Points
//	/metrics         Prometheus text exposition of the same registry
//
// The mux is independent of http.DefaultServeMux, so importing this package
// never leaks profiling handlers into a production listener; exposure is
// exactly the daemons' explicit opt-in flag.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	return mux
}
