package kmeans

import (
	"fmt"
	"sort"
)

// sumFloats accumulates floats in map order: addition is not associative,
// so the result bits depend on Go's randomized iteration.
func sumFloats(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "float accumulation over map iteration order"
	}
	return total
}

// sortedKeys appends in map order but canonicalizes with a sort afterward.
func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// unsortedKeys leaks map order into the returned slice.
func unsortedKeys(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want "append to keys under map iteration"
	}
	return keys
}

// deterministicSum iterates a sorted key slice, not the map.
func deterministicSum(m map[int]float64) float64 {
	var total float64
	for _, k := range sortedKeys(m) {
		total += m[k]
	}
	return total
}

// dump prints in map order.
func dump(m map[int]float64) {
	for k, v := range m {
		fmt.Printf("%d=%v\n", k, v) // want "fmt.Printf inside map iteration"
	}
}

// emit sends in map order: the receiver observes a random sequence.
func emit(m map[int]float64, ch chan int) {
	for k := range m {
		ch <- k // want "channel send inside map iteration"
	}
}

// histogram writes into another map: order-insensitive, allowed.
func histogram(m map[int]float64) map[int]int {
	out := make(map[int]int)
	for k := range m {
		out[k/10] = out[k/10] + 1
	}
	return out
}
