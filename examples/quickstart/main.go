// Quickstart: monitor a small synthetic cluster under a 30% transmission
// budget, then forecast every machine's CPU and memory utilization five
// steps ahead.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"orcf"
)

func main() {
	const (
		nodes     = 40
		steps     = 600
		resources = 2 // CPU + memory
		horizon   = 5
	)

	// A synthetic trace standing in for live agent measurements.
	ds, err := orcf.GenerateTrace(orcf.GeneratorConfig{
		Name:  "quickstart",
		Nodes: nodes,
		Steps: steps,
		Seed:  42,
	})
	if err != nil {
		log.Fatalf("generating trace: %v", err)
	}

	// The pipeline with the paper's defaults: adaptive transmission at
	// B=0.3, K=3 dynamic clusters per resource, sample-and-hold forecasting
	// after a 200-step warm-up.
	sys, err := orcf.New(nodes, resources,
		orcf.WithBudget(0.3),
		orcf.WithClusters(3),
		orcf.WithTrainingSchedule(200, 100),
		orcf.WithSeed(7),
	)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}

	for t := 0; t < steps; t++ {
		x := make([][]float64, nodes)
		for i := 0; i < nodes; i++ {
			x[i] = ds.At(t, i)
		}
		if _, err := sys.Step(x); err != nil {
			log.Fatalf("step %d: %v", t, err)
		}
	}

	fmt.Printf("processed %d steps; mean transmission frequency %.3f (budget 0.30)\n",
		sys.Steps(), sys.MeanFrequency())

	forecasts, err := sys.Forecast(horizon)
	if err != nil {
		log.Fatalf("forecasting: %v", err)
	}
	fmt.Printf("\n%d-step-ahead forecasts for the first 8 machines:\n", horizon)
	fmt.Println("node   cpu    mem")
	for i := 0; i < 8; i++ {
		fmt.Printf("%4d  %.3f  %.3f\n", i, forecasts[horizon-1][i][0], forecasts[horizon-1][i][1])
	}
}
