package alert

import (
	"testing"

	"orcf/internal/core"
	"orcf/internal/forecast"
	"orcf/internal/transmit"
)

// newTestSystem builds a small always-transmit pipeline with snapshots
// enabled — the substrate every engine test evaluates against.
func newTestSystem(t *testing.T, nodes int, mutate func(*core.Config)) *core.System {
	t.Helper()
	cfg := core.Config{
		Nodes: nodes, Resources: 1, K: 2, InitialCollection: 6, RetrainEvery: 200,
		MPrime: 3, Seed: 1, SnapshotHorizon: 8,
		Policy: func(int) (transmit.Policy, error) { return transmit.Always{}, nil },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// stepValue feeds every live member the given value (plus a tiny per-slot
// spread so clustering has structure) for one step.
func stepValue(t *testing.T, sys *core.System, v float64) {
	t.Helper()
	roster := sys.Roster()
	x := make([][]float64, roster.Slots())
	for i := range x {
		if _, live := roster.IDAt(i); live {
			x[i] = []float64{v + float64(i)*0.005}
		}
	}
	if _, err := sys.Step(x); err != nil {
		t.Fatal(err)
	}
}

func mustEvaluate(t *testing.T, e *Engine, sys *core.System) []Event {
	t.Helper()
	events, err := e.Evaluate(sys.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestEngineClusterThresholdLifecycle(t *testing.T) {
	t.Parallel()
	sys := newTestSystem(t, 4, nil)
	collector := &CollectorSink{}
	engine, err := New(Config{
		Rules: &RuleSet{StepsPerHour: 1, Rules: []Rule{{
			Name: "util-high", Kind: KindThreshold, Scope: ScopeCluster,
			Cluster: -1, Above: true, Threshold: 0.8,
			FireStreak: 2, ClearStreak: 2, ClearMargin: 0.05, Horizon: 1,
		}}},
		Sinks: []Sink{collector}, MaxHorizon: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Calm warmup: nothing may fire while utilization sits at 0.2.
	for i := 0; i < 10; i++ {
		stepValue(t, sys, 0.2)
		if evs := mustEvaluate(t, engine, sys); len(evs) != 0 {
			t.Fatalf("calm step %d produced events %+v", i, evs)
		}
	}
	if !sys.Ready() {
		t.Fatal("system not ready after warmup")
	}

	// Burst: centroid forecasts cross 0.8; hysteresis demands 2 consecutive
	// breaches, so the fire lands on the second burst evaluation at the
	// earliest and everything fires within a few more.
	fired := 0
	for i := 0; i < 6 && fired == 0; i++ {
		stepValue(t, sys, 0.9)
		for _, ev := range mustEvaluate(t, engine, sys) {
			if ev.State != StateFiring || ev.Rule != "util-high" {
				t.Fatalf("unexpected event %+v", ev)
			}
			if i == 0 {
				t.Fatalf("fired on first breach despite fire_streak=2: %+v", ev)
			}
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("burst never fired the cluster rule")
	}
	if got := len(engine.Active()); got != fired {
		t.Fatalf("Active reports %d instances, %d fired", got, fired)
	}

	// Subside: every firing instance must resolve (0.2 < 0.8 - 0.05).
	resolved := 0
	for i := 0; i < 10 && resolved < fired; i++ {
		stepValue(t, sys, 0.2)
		for _, ev := range mustEvaluate(t, engine, sys) {
			if ev.State != StateResolved {
				t.Fatalf("unexpected event during subsidence %+v", ev)
			}
			resolved++
		}
	}
	if resolved != fired {
		t.Fatalf("resolved %d of %d fired instances", resolved, fired)
	}
	if len(engine.Active()) != 0 {
		t.Fatalf("instances still firing after subsidence: %+v", engine.Active())
	}

	st := engine.Stats()
	if st.Fires != int64(fired) || st.Resolves != int64(resolved) || st.Firing != 0 {
		t.Fatalf("stats %+v disagree with fired=%d resolved=%d", st, fired, resolved)
	}
	if st.Sinks.Delivered != int64(len(collector.Events())) || st.Sinks.Delivered != st.Fires+st.Resolves {
		t.Fatalf("sink accounting %+v, want every transition delivered", st.Sinks)
	}
}

func TestEngineEvaluateIdempotentPerGeneration(t *testing.T) {
	t.Parallel()
	sys := newTestSystem(t, 3, nil)
	engine, err := New(Config{Rules: &RuleSet{StepsPerHour: 1, Rules: []Rule{{
		Name: "hot", Kind: KindThreshold, Scope: ScopeCluster, Cluster: -1,
		Above: true, Threshold: 0.5, FireStreak: 1, ClearStreak: 1, Horizon: 1,
	}}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		stepValue(t, sys, 0.9)
	}
	first := mustEvaluate(t, engine, sys)
	if len(first) == 0 {
		t.Fatal("breaching snapshot produced no events with fire_streak=1")
	}
	before := engine.Stats()
	if again := mustEvaluate(t, engine, sys); len(again) != 0 {
		t.Fatalf("re-evaluating the same generation produced events %+v", again)
	}
	if after := engine.Stats(); after != before {
		t.Fatalf("re-evaluation moved counters: %+v -> %+v", before, after)
	}
}

func TestEngineNodeRuleSkipsWarmingJoiner(t *testing.T) {
	t.Parallel()
	sys := newTestSystem(t, 3, nil)
	engine, err := New(Config{Rules: &RuleSet{StepsPerHour: 1, Rules: []Rule{{
		Name: "node-hot", Kind: KindThreshold, Scope: ScopeNode,
		Above: true, Threshold: 0.8, FireStreak: 1, ClearStreak: 1, Horizon: 2,
	}}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		stepValue(t, sys, 0.2)
		mustEvaluate(t, engine, sys)
	}
	// A joiner warms up behind the presence mask: until its first stored
	// measurement enters the look-back window its forecast rows are NaN, and
	// the engine must count skips instead of creating (let alone firing) an
	// instance for it. A nil row means "no report this step".
	if err := sys.AddNodes(99); err != nil {
		t.Fatal(err)
	}
	base := engine.Stats()
	roster := sys.Roster()
	x := make([][]float64, roster.Slots())
	for i := range x {
		if id, live := roster.IDAt(i); live && id != 99 {
			x[i] = []float64{0.2}
		}
	}
	if _, err := sys.Step(x); err != nil {
		t.Fatal(err)
	}
	if evs := mustEvaluate(t, engine, sys); len(evs) != 0 {
		t.Fatalf("warming joiner caused events %+v", evs)
	}
	st := engine.Stats()
	if st.NaNSkips <= base.NaNSkips {
		t.Fatalf("joiner's NaN row not counted as skip: %+v -> %+v", base, st)
	}
	if st.Fires != 0 {
		t.Fatalf("false fire under churn: %+v", st)
	}
}

func TestEngineDepartedNodeResolves(t *testing.T) {
	t.Parallel()
	sys := newTestSystem(t, 4, nil)
	engine, err := New(Config{Rules: &RuleSet{StepsPerHour: 1, Rules: []Rule{{
		Name: "node-hot", Kind: KindThreshold, Scope: ScopeNode,
		Above: true, Threshold: 0.8, FireStreak: 1, ClearStreak: 3, Horizon: 1,
	}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 runs hot; the rest stay calm.
	hotStep := func() {
		roster := sys.Roster()
		x := make([][]float64, roster.Slots())
		for i := range x {
			id, live := roster.IDAt(i)
			if !live {
				continue
			}
			v := 0.2
			if id == 2 {
				v = 0.95
			}
			x[i] = []float64{v}
		}
		if _, err := sys.Step(x); err != nil {
			t.Fatal(err)
		}
	}
	firing := false
	for i := 0; i < 12 && !firing; i++ {
		hotStep()
		for _, ev := range mustEvaluate(t, engine, sys) {
			if ev.State == StateFiring && ev.Node == 2 {
				firing = true
			}
		}
	}
	if !firing {
		t.Fatal("hot node never fired")
	}
	if err := sys.RemoveNodes(2); err != nil {
		t.Fatal(err)
	}
	hotStep()
	var departed *Event
	for _, ev := range mustEvaluate(t, engine, sys) {
		ev := ev
		if ev.State == StateResolved && ev.Node == 2 {
			departed = &ev
		}
	}
	if departed == nil {
		t.Fatal("departure did not resolve the firing instance")
	}
	if departed.Reason != "departed" {
		t.Fatalf("departure resolve reason %q, want \"departed\"", departed.Reason)
	}
	if len(engine.Active()) != 0 {
		t.Fatalf("instances still firing after departure: %+v", engine.Active())
	}
}

func TestEngineTrendRuleFiresOnRamp(t *testing.T) {
	t.Parallel()
	sys := newTestSystem(t, 3, func(c *core.Config) {
		// Holt smoothing projects the ramp forward; sample-and-hold would
		// forecast flat and a trend rule could never see a slope.
		c.Model = func() forecast.Model {
			m, err := forecast.NewHolt(0, 0, 0)
			if err != nil {
				panic(err)
			}
			return m
		}
	})
	engine, err := New(Config{Rules: &RuleSet{StepsPerHour: 100, Rules: []Rule{{
		Name: "ramping", Kind: KindTrend, Scope: ScopeCluster, Cluster: -1,
		Above: true, Threshold: 0.2, FireStreak: 2, ClearStreak: 2,
		ClearMargin: 0.05, Horizon: 4,
	}}}})
	if err != nil {
		t.Fatal(err)
	}
	// Ramp at 0.005/step: the per-hour slope at 100 steps/hour is ~0.5,
	// clearing the 0.2 threshold once Holt locks onto the trend.
	fired := false
	v := 0.1
	for i := 0; i < 30 && !fired; i++ {
		stepValue(t, sys, v)
		v += 0.005
		for _, ev := range mustEvaluate(t, engine, sys) {
			if ev.State == StateFiring {
				fired = true
			}
		}
	}
	if !fired {
		t.Fatal("trend rule never fired on a sustained ramp")
	}
	// Plateau: the estimated slope decays toward zero and the alert resolves.
	resolved := false
	for i := 0; i < 80 && !resolved; i++ {
		stepValue(t, sys, v)
		for _, ev := range mustEvaluate(t, engine, sys) {
			if ev.State == StateResolved {
				resolved = true
			}
		}
	}
	if !resolved {
		t.Fatal("trend rule never resolved on the plateau")
	}
}
