package orcf

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus the ablation suite. Each benchmark runs
// the corresponding experiment regenerator at a reduced scale so the whole
// `go test -bench=. -benchmem` pass completes on a laptop; the reported
// ns/op measures one full regeneration of that experiment.
//
// To regenerate the tables at the readable quick scale (or paper scale), use
// the CLI instead: `go run ./cmd/repro -exp fig4` or `-exp all [-full]`.

import (
	"math"
	"testing"

	"orcf/internal/exp"
	"orcf/internal/forecast"
)

// benchOptions is the reduced scale shared by all experiment benchmarks.
func benchOptions() exp.Options {
	return exp.Options{
		Nodes: 32, Steps: 400, Warmup: 150, Seed: 1,
		ForecastEvery: 25, LSTMEpochs: 3, FitWindow: 200,
	}
}

// benchGaussianOptions needs the full 500+500 train/test phases of §VI-E.
func benchGaussianOptions() exp.Options {
	o := benchOptions()
	o.Steps = 1100
	return o
}

func runExpBenchmark(b *testing.B, fn func(exp.Options) (*exp.Table, error), o exp.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := fn(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty result table")
		}
	}
}

// BenchmarkFig1CorrelationCDF regenerates the motivational correlation-CDF
// comparison (sensor vs cluster data).
func BenchmarkFig1CorrelationCDF(b *testing.B) {
	runExpBenchmark(b, exp.Fig1, benchOptions())
}

// BenchmarkFig3AdaptiveTransmission regenerates the requested-vs-actual
// transmission frequency sweep.
func BenchmarkFig3AdaptiveTransmission(b *testing.B) {
	runExpBenchmark(b, exp.Fig3, benchOptions())
}

// BenchmarkFig4TransmissionRMSE regenerates the adaptive-vs-uniform h=0
// RMSE comparison.
func BenchmarkFig4TransmissionRMSE(b *testing.B) {
	runExpBenchmark(b, exp.Fig4, benchOptions())
}

// BenchmarkFig5TemporalDim regenerates the temporal-clustering-dimension
// sweep.
func BenchmarkFig5TemporalDim(b *testing.B) {
	runExpBenchmark(b, exp.Fig5, benchOptions())
}

// BenchmarkTable1ScalarVsVector regenerates the scalar-vs-full-vector
// clustering comparison.
func BenchmarkTable1ScalarVsVector(b *testing.B) {
	runExpBenchmark(b, exp.Table1, benchOptions())
}

// BenchmarkFig6ClusteringVsB regenerates the intermediate-RMSE-vs-budget
// comparison of clustering methods.
func BenchmarkFig6ClusteringVsB(b *testing.B) {
	runExpBenchmark(b, exp.Fig6, benchOptions())
}

// BenchmarkFig7ClusteringVsK regenerates the intermediate-RMSE-vs-K
// comparison of clustering methods.
func BenchmarkFig7ClusteringVsK(b *testing.B) {
	runExpBenchmark(b, exp.Fig7, benchOptions())
}

// BenchmarkFig8CentroidForecast regenerates the instantaneous centroid
// tracking comparison (ARIMA / LSTM / sample-and-hold).
func BenchmarkFig8CentroidForecast(b *testing.B) {
	runExpBenchmark(b, exp.Fig8, benchOptions())
}

// BenchmarkFig9ForecastModels regenerates the model comparison across
// forecast horizons on the full pipeline.
func BenchmarkFig9ForecastModels(b *testing.B) {
	runExpBenchmark(b, exp.Fig9, benchOptions())
}

// BenchmarkTable2TrainingTime regenerates the ARIMA-vs-LSTM training-time
// accounting.
func BenchmarkTable2TrainingTime(b *testing.B) {
	runExpBenchmark(b, exp.Table2, benchOptions())
}

// BenchmarkFig10ClusteringForecast regenerates the clustering-method
// comparison under sample-and-hold forecasting.
func BenchmarkFig10ClusteringForecast(b *testing.B) {
	runExpBenchmark(b, exp.Fig10, benchOptions())
}

// BenchmarkTable3MMPrime regenerates the M × M′ sensitivity grid.
func BenchmarkTable3MMPrime(b *testing.B) {
	runExpBenchmark(b, exp.Table3, benchOptions())
}

// BenchmarkFig11Similarity regenerates the proposed-similarity-vs-Jaccard
// comparison.
func BenchmarkFig11Similarity(b *testing.B) {
	runExpBenchmark(b, exp.Fig11, benchOptions())
}

// BenchmarkFig12GaussianComparison regenerates the comparison against the
// Gaussian monitor-selection baselines.
func BenchmarkFig12GaussianComparison(b *testing.B) {
	runExpBenchmark(b, exp.Fig12, benchGaussianOptions())
}

// BenchmarkTable4GaussianTime regenerates the per-approach computation-time
// table.
func BenchmarkTable4GaussianTime(b *testing.B) {
	runExpBenchmark(b, exp.Table4, benchGaussianOptions())
}

// BenchmarkAblations regenerates the design-choice ablation table
// (re-indexing, α-clamp, M′, adaptive policy).
func BenchmarkAblations(b *testing.B) {
	runExpBenchmark(b, exp.Ablations, benchOptions())
}

// benchPipelineStep measures the steady-state cost of one online step of
// the full system (transmission decisions + clustering + model updates) at
// the given fleet size with two resources — the per-tick cost a deployment
// would pay. steps is the trace length cycled through; churnEvery > 0
// additionally replaces 8 members every churnEvery-th iteration (outside the
// timer), exercising the membership-change fallback of the incremental path.
func benchPipelineStep(b *testing.B, nodes, steps, workers, churnEvery int, opts ...Option) {
	b.Helper()
	benchPipelineStepD(b, nodes, 2, steps, workers, churnEvery, opts...)
}

// benchPipelineStepD is benchPipelineStep with the measurement dimensionality
// d exposed, for the vectorized-assignment variants.
func benchPipelineStepD(b *testing.B, nodes, resources, steps, workers, churnEvery int, opts ...Option) {
	b.Helper()
	ds, err := GenerateTrace(GeneratorConfig{
		Name: "bench", Nodes: nodes, Steps: steps, Resources: resources, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	opts = append([]Option{WithBudget(0.3), WithTrainingSchedule(1_000_000, 1_000_000),
		WithSeed(1), WithWorkers(workers)}, opts...)
	sys, err := New(nodes, resources, opts...)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the pipeline so the timed loop measures the steady state (first
	// transmissions, buffer growth, and the first full refit are excluded).
	for t := 0; t < 3; t++ {
		if _, err := sys.Step(ds.Data[t%ds.Steps()]); err != nil {
			b.Fatal(err)
		}
	}
	nextID := nodes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if churnEvery > 0 && i%churnEvery == churnEvery-1 {
			b.StopTimer()
			members := sys.Members()
			fresh := make([]int, 8)
			for j := range fresh {
				if err := sys.RemoveNodes(members[(j*17)%len(members)]); err != nil {
					b.Fatal(err)
				}
				fresh[j] = nextID
				nextID++
			}
			if err := sys.AddNodes(fresh...); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, err := sys.Step(ds.Data[i%ds.Steps()]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineStep is the online-step family of the perf trajectory:
//
//   - N=256: the historical default scale (worker pool at GOMAXPROCS).
//   - N=10000: the single-core speed-wall headline — incremental eq. (10)
//     refits warm-start from the previous centroids, so the steady state
//     skips K-means entirely on most steps.
//   - N=10000-full: the same fleet with incremental refits disabled; the
//     ratio to N=10000 is the speedup the incremental path buys.
//   - N=10000-churn: incremental under membership churn (8 of 10000 members
//     replaced every 8th step, outside the timer), paying the full-refit
//     fallback on churn steps.
func BenchmarkPipelineStep(b *testing.B) {
	b.Run("N=256", func(b *testing.B) { benchPipelineStep(b, 256, 64, 0, 0) })
	b.Run("N=10000", func(b *testing.B) {
		benchPipelineStep(b, 10000, 24, 0, 0, WithIncrementalRefit(0))
	})
	b.Run("N=10000-full", func(b *testing.B) { benchPipelineStep(b, 10000, 24, 0, 0) })
	b.Run("N=10000-churn", func(b *testing.B) {
		benchPipelineStep(b, 10000, 24, 0, 8, WithIncrementalRefit(0))
	})
	// d=4 doubles the flat-layout row width, exercising the blocked distance
	// loop in kmeans.AssignFlat (d=1 takes a scalar fast path and d=2 rows
	// are too narrow to show blocking effects at full strength).
	b.Run("N=10000-d4", func(b *testing.B) {
		benchPipelineStepD(b, 10000, 4, 24, 0, 0)
	})
}

// BenchmarkPipelineStepSerial pins the worker pool to one worker at the
// historical N=256 scale. The outputs are bit-identical to the pooled run
// (see core.TestParallelMatchesSerialExactly); comparing the two isolates
// the multi-core speedup from the allocation reductions, which both share.
func BenchmarkPipelineStepSerial(b *testing.B) { benchPipelineStep(b, 256, 64, 1, 0) }

// benchForecastQuery measures producing a 50-step forecast for all nodes
// from a warm system.
func benchForecastQuery(b *testing.B, workers int) {
	b.Helper()
	ds, err := GenerateTrace(GeneratorConfig{Name: "bench", Nodes: 128, Steps: 80, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := New(128, 2, WithAlwaysTransmit(), WithTrainingSchedule(60, 1000),
		WithSeed(1), WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	for t := 0; t < ds.Steps(); t++ {
		if _, err := sys.Step(ds.Data[t]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Forecast(50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForecastQuery / BenchmarkForecastQuerySerial mirror the
// PipelineStep pair for the per-node forecast reconstruction path.
func BenchmarkForecastQuery(b *testing.B)       { benchForecastQuery(b, 0) }
func BenchmarkForecastQuerySerial(b *testing.B) { benchForecastQuery(b, 1) }

// benchEnsembleRetrain measures one full retraining round of the K×Dims
// ARIMA models of a single tracker's ensemble — the grid search dominates
// the system's periodic maintenance cost and is embarrassingly parallel
// across the independent (cluster, dim) models.
func benchEnsembleRetrain(b *testing.B, workers int) {
	b.Helper()
	const warm = 192
	ens, err := forecast.NewEnsemble(forecast.EnsembleConfig{
		Clusters: 3, Dims: 2,
		InitialCollection: warm,
		RetrainEvery:      1, // every post-warmup Observe retrains all models
		Builder:           func() forecast.Model { return forecast.NewAutoARIMA(DefaultARIMAGrid()) },
		Workers:           workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	centroids := func(t int) [][]float64 {
		out := make([][]float64, 3)
		for j := range out {
			phase := float64(j) * 2.1
			out[j] = []float64{
				0.4 + 0.2*math.Sin(float64(t)/12+phase),
				0.5 + 0.1*math.Cos(float64(t)/9+phase),
			}
		}
		return out
	}
	for t := 0; t < warm; t++ {
		if err := ens.Observe(centroids(t)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ens.Observe(centroids(warm + i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnsembleRetrain measures the periodic model-retraining round with
// the default worker pool; the Serial variant pins it to one worker. ns/op
// is one complete 3×2-model ARIMA refit.
func BenchmarkEnsembleRetrain(b *testing.B)       { benchEnsembleRetrain(b, 0) }
func BenchmarkEnsembleRetrainSerial(b *testing.B) { benchEnsembleRetrain(b, 1) }

// benchEnsembleSelect measures the steady-state per-step overhead the model
// zoo adds on top of a single family: updating every candidate, scoring the
// cached 1-step forecasts against the new centroids, running the
// champion/challenger selector, and refreshing the forecast cache. Refits are
// pushed out of the timed loop (RetrainEvery is huge), so ns/op is pure
// selection-plane cost for a 4-family, 3×2-cell zoo.
func benchEnsembleSelect(b *testing.B, workers int) {
	b.Helper()
	const warm = 192
	zoo, err := forecast.Zoo("sample-and-hold", "ses", "holt", "ar")
	if err != nil {
		b.Fatal(err)
	}
	ens, err := forecast.NewEnsemble(forecast.EnsembleConfig{
		Clusters: 3, Dims: 2,
		InitialCollection: warm,
		RetrainEvery:      1 << 30,
		Candidates:        zoo,
		Workers:           workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	centroids := func(t int) [][]float64 {
		out := make([][]float64, 3)
		for j := range out {
			phase := float64(j) * 2.1
			out[j] = []float64{
				0.4 + 0.2*math.Sin(float64(t)/12+phase),
				0.5 + 0.1*math.Cos(float64(t)/9+phase),
			}
		}
		return out
	}
	for t := 0; t < warm; t++ {
		if err := ens.Observe(centroids(t)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ens.Observe(centroids(warm + i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnsembleSelect tracks the online selection overhead of the model
// zoo; the Serial variant pins the worker pool to one worker.
func BenchmarkEnsembleSelect(b *testing.B)       { benchEnsembleSelect(b, 0) }
func BenchmarkEnsembleSelectSerial(b *testing.B) { benchEnsembleSelect(b, 1) }
